"""Per-rank memory accounting (Table 5 and the right axes of Figure 6).

The paper's "K-FAC memory overhead" is the per-GPU memory used by K-FAC state
on top of regular training: the running-average Kronecker factors (held by
every rank, because the factor allreduce leaves a copy everywhere) plus the
eigen decompositions and the cached eigenvalue outer product (held only by
the ranks that act as *gradient workers* for a layer).  That makes the
overhead a linear function of ``grad_worker_frac``, which is exactly what
Table 5's min/max columns and Figure 6's right axes show.

Regular training memory is modelled as weights + gradients + optimizer state
+ an activation estimate proportional to the local batch size.  Activation
memory depends on implementation details we cannot reproduce byte-for-byte,
so it is an explicit, documented per-workload parameter rather than a hidden
constant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from ..kfac.strategy import DistributionStrategy, LayerShapeInfo
from ..nn.module import Module
from ..tensor import PrecisionPolicy

__all__ = ["MemoryBreakdown", "model_parameter_bytes", "optimizer_state_multiplier", "KFACMemoryModel"]

MB = 1024 * 1024


@dataclass
class MemoryBreakdown:
    """Bytes per rank for each memory category."""

    weights: int = 0
    gradients: int = 0
    optimizer_state: int = 0
    activations: int = 0
    kfac_factors: int = 0
    kfac_eigen: int = 0

    @property
    def baseline_total(self) -> int:
        """Memory without K-FAC (the 'SGD Abs.' column of Table 5)."""
        return self.weights + self.gradients + self.optimizer_state + self.activations

    @property
    def kfac_overhead(self) -> int:
        """K-FAC state on top of baseline training."""
        return self.kfac_factors + self.kfac_eigen

    @property
    def total(self) -> int:
        return self.baseline_total + self.kfac_overhead

    @property
    def overhead_percent(self) -> float:
        """Percentage increase of memory over the baseline (Table 5's delta column)."""
        if self.baseline_total == 0:
            return 0.0
        return 100.0 * self.kfac_overhead / self.baseline_total

    def as_megabytes(self) -> Dict[str, float]:
        return {
            "weights": self.weights / MB,
            "gradients": self.gradients / MB,
            "optimizer_state": self.optimizer_state / MB,
            "activations": self.activations / MB,
            "kfac_factors": self.kfac_factors / MB,
            "kfac_eigen": self.kfac_eigen / MB,
            "baseline_total": self.baseline_total / MB,
            "kfac_overhead": self.kfac_overhead / MB,
            "total": self.total / MB,
        }


def model_parameter_bytes(model_or_count, dtype_bytes: int = 4) -> int:
    """Bytes of the model weights, from a module or a raw parameter count."""
    if isinstance(model_or_count, Module):
        count = model_or_count.num_parameters()
    else:
        count = int(model_or_count)
    return count * dtype_bytes


def optimizer_state_multiplier(optimizer_name: str) -> int:
    """Number of parameter-sized state buffers kept per parameter by an optimizer."""
    lowered = optimizer_name.lower()
    if lowered in ("sgd",):
        return 1  # momentum buffer
    if lowered in ("adam", "adamw", "lamb", "fusedlamb"):
        return 2  # first and second moments
    raise ValueError(f"unknown optimizer {optimizer_name!r}")


class KFACMemoryModel:
    """Computes per-rank memory breakdowns for a workload under a distribution strategy."""

    def __init__(
        self,
        layers: Sequence[LayerShapeInfo],
        param_count: int,
        optimizer: str = "sgd",
        weight_dtype_bytes: int = 4,
        factor_dtype_bytes: int = 4,
        eigen_dtype_bytes: int = 4,
        activation_bytes_per_sample: int = 0,
        include_outer_product: bool = True,
    ) -> None:
        self.layers = list(layers)
        self.param_count = int(param_count)
        self.optimizer = optimizer
        self.weight_dtype_bytes = int(weight_dtype_bytes)
        self.factor_dtype_bytes = int(factor_dtype_bytes)
        self.eigen_dtype_bytes = int(eigen_dtype_bytes)
        self.activation_bytes_per_sample = int(activation_bytes_per_sample)
        self.include_outer_product = include_outer_product

    @classmethod
    def from_precision(cls, layers, param_count, optimizer, precision: PrecisionPolicy, **kwargs) -> "KFACMemoryModel":
        """Build the model using the factor/eigen dtypes of a precision policy."""
        return cls(
            layers,
            param_count,
            optimizer,
            factor_dtype_bytes=np.dtype(precision.factor_dtype).itemsize,
            eigen_dtype_bytes=np.dtype(precision.inverse_dtype).itemsize,
            **kwargs,
        )

    # ------------------------------------------------------------- components
    def factor_bytes(self) -> int:
        """Bytes of all Kronecker factors held by every rank.

        Each factor is charged at its stored (packed) size: ``n²`` elements
        for dense, ``n`` for diagonal, ``blocks·bs²`` for block-diagonal —
        matching the arrays the handlers actually allocate.
        """
        return sum(
            (l.a_repr.packed_numel + l.g_repr.packed_numel) * self.factor_dtype_bytes for l in self.layers
        )

    def eigen_bytes_for_layer(self, layer: LayerShapeInfo) -> int:
        # Eigenvalues + stored eigenvectors per factor; a diagonal factor's
        # identity eigenbasis is implicit and costs nothing.
        total = (layer.a_repr.packed_eigen_numel + layer.g_repr.packed_eigen_numel) * self.eigen_dtype_bytes
        if self.include_outer_product:
            total += layer.a_dim * layer.g_dim * self.eigen_dtype_bytes
        return total

    def eigen_bytes_per_rank(self, world_size: int, grad_worker_frac: float) -> np.ndarray:
        """Eigen-decomposition bytes held by each rank under a given strategy."""
        strategy = DistributionStrategy(world_size, grad_worker_frac)
        groups = strategy.assign(self.layers)
        per_rank = np.zeros(world_size, dtype=np.int64)
        for layer in self.layers:
            group = groups[layer.name]
            nbytes = self.eigen_bytes_for_layer(layer)
            for rank in group.grad_workers:
                per_rank[rank] += nbytes
        return per_rank

    # ------------------------------------------------------------- breakdowns
    def breakdown(
        self,
        world_size: int,
        grad_worker_frac: Optional[float],
        local_batch_size: int = 0,
        rank: str = "max",
    ) -> MemoryBreakdown:
        """Memory breakdown for one rank.

        ``grad_worker_frac=None`` gives the baseline (no K-FAC) breakdown.
        ``rank`` selects ``"max"`` (busiest rank, the paper's reported number),
        ``"min"`` or ``"mean"``.
        """
        weights = self.param_count * self.weight_dtype_bytes
        gradients = self.param_count * self.weight_dtype_bytes
        opt_state = self.param_count * self.weight_dtype_bytes * optimizer_state_multiplier(self.optimizer)
        activations = self.activation_bytes_per_sample * local_batch_size
        result = MemoryBreakdown(
            weights=weights, gradients=gradients, optimizer_state=opt_state, activations=activations
        )
        if grad_worker_frac is None:
            return result
        result.kfac_factors = self.factor_bytes()
        per_rank = self.eigen_bytes_per_rank(world_size, grad_worker_frac)
        if rank == "max":
            result.kfac_eigen = int(per_rank.max())
        elif rank == "min":
            result.kfac_eigen = int(per_rank.min())
        elif rank == "mean":
            result.kfac_eigen = int(per_rank.mean())
        else:
            raise ValueError("rank must be 'max', 'min' or 'mean'")
        return result

    def overhead_bytes(self, world_size: int, grad_worker_frac: float, rank: str = "max") -> int:
        """K-FAC overhead only (factors + eigen state) for the selected rank."""
        return self.breakdown(world_size, grad_worker_frac, rank=rank).kfac_overhead

    def max_local_batch_size(
        self,
        memory_budget_bytes: int,
        world_size: int,
        grad_worker_frac: Optional[float],
        activation_bytes_per_sample: Optional[int] = None,
    ) -> int:
        """Largest local batch size that fits in ``memory_budget_bytes`` (Table 4 setup)."""
        per_sample = (
            activation_bytes_per_sample if activation_bytes_per_sample is not None else self.activation_bytes_per_sample
        )
        if per_sample <= 0:
            raise ValueError("activation_bytes_per_sample must be positive to size a batch")
        fixed = self.breakdown(world_size, grad_worker_frac, local_batch_size=0).total
        available = memory_budget_bytes - fixed
        if available < per_sample:
            return 0
        return int(available // per_sample)
