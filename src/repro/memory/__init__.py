"""Memory accounting for the Table 5 / Figure 6 / Table 4 studies."""

from .tracker import (
    MB,
    KFACMemoryModel,
    MemoryBreakdown,
    model_parameter_bytes,
    optimizer_state_multiplier,
)

__all__ = [
    "MemoryBreakdown",
    "KFACMemoryModel",
    "model_parameter_bytes",
    "optimizer_state_multiplier",
    "MB",
]
