"""AST lint rules for SPMD correctness hazards.

Each rule is a subclass of :class:`Rule` with a stable ``rule_id`` (used in
reports and ``# spmd-ignore:`` suppressions).  Rules run in two phases over a
batch of modules: :meth:`Rule.collect` sees every module first (to gather
project-wide facts such as "attribute ``pending`` is set-typed somewhere"),
then :meth:`Rule.check` re-visits each module and yields findings.

The rules target the hazard classes of this codebase's async comm stack:

========  ============================  ==========================================
ID        name                          hazard
========  ============================  ==========================================
SPMD101   rank-dependent-collective     collective posted under a rank-dependent
                                        branch → ranks diverge → deadlock
SPMD102   lost-work-handle              nonblocking post whose WorkHandle is
                                        dropped or never waited → lost comm
SPMD103   unordered-iteration           iterating a ``set``/``frozenset`` while
                                        planning comm → cross-rank schedule
                                        divergence (hash order is per-process)
SPMD104   unlocked-shared-mutation      attribute guarded by a lock elsewhere in
                                        the class mutated outside that lock
SPMD105   unordered-accumulation        float reduction (``sum``/``fsum``/
                                        ``np.sum``) over a set → accumulation
                                        order, hence rounding, is per-process
SPMD106   collective-in-except          collective inside ``except:`` — only the
                                        raising rank runs it → deadlock
SPMD107   nondeterministic-guard        collective under a branch conditioned on
                                        time/random → ranks may disagree
========  ============================  ==========================================
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

__all__ = ["Finding", "Rule", "DEFAULT_RULES", "all_rule_ids"]

#: Method/function names that perform (or drive) a collective in this codebase.
COLLECTIVE_CALLS = frozenset(
    {
        "allreduce_average",
        "allreduce_sum",
        "broadcast",
        "ibroadcast",
        "iallreduce_average",
        "barrier",
        "run_collective",
        "post_collective",
        "finish_collective",
        "run_allreduces",
        "run_broadcasts",
        "post_allreduces",
        "post_broadcasts",
        "drain",
    }
)

#: Nonblocking posts that return a WorkHandle the caller must finish.
NONBLOCKING_CALLS = frozenset({"iallreduce_average", "ibroadcast", "post_collective"})

#: Method calls that mutate a container in place (for SPMD104).
MUTATOR_METHODS = frozenset(
    {
        "append",
        "appendleft",
        "add",
        "update",
        "pop",
        "popleft",
        "popitem",
        "clear",
        "remove",
        "discard",
        "extend",
        "insert",
        "setdefault",
        "sort",
    }
)

#: Set-returning method names on set objects (for SPMD103/105 inference).
SET_METHODS = frozenset({"union", "intersection", "difference", "symmetric_difference", "copy"})

#: Call names in a branch condition that make it nondeterministic (SPMD107).
NONDETERMINISTIC_CALLS = frozenset(
    {
        "perf_counter",
        "monotonic",
        "process_time",
        "time",
        "time_ns",
        "random",
        "randint",
        "randn",
        "rand",
        "randrange",
        "choice",
        "shuffle",
        "uniform",
        "normal",
        "now",
        "getrandbits",
    }
)


@dataclass(frozen=True)
class Finding:
    """One lint finding, anchored to a source location."""

    rule_id: str
    rule_name: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule_id} [{self.rule_name}] {self.message}"


class Rule:
    """Base class for lint rules (two-phase: collect across modules, then check)."""

    rule_id: str = "SPMD000"
    rule_name: str = "abstract"

    def collect(self, path: str, tree: ast.Module) -> None:
        """First pass over every module: gather project-wide facts."""

    def check(self, path: str, tree: ast.Module) -> Iterator[Finding]:
        """Second pass: yield findings for one module."""
        return iter(())

    def finding(self, path: str, node: ast.AST, message: str) -> Finding:
        return Finding(
            rule_id=self.rule_id,
            rule_name=self.rule_name,
            path=path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


# --------------------------------------------------------------------------- helpers


def call_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _mentions_rank(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Name) and node.id in ("rank", "global_rank", "local_rank"):
            return True
        if isinstance(node, ast.Attribute) and node.attr in ("rank", "_rank", "global_rank", "local_rank"):
            return True
    return False


def _mentions_nondeterminism(expr: ast.AST) -> bool:
    for node in ast.walk(expr):
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in NONDETERMINISTIC_CALLS:
                return True
    return False


def _is_self_attr(node: ast.AST, attr: Optional[str] = None) -> bool:
    return (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
        and (attr is None or node.attr == attr)
    )


_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _is_set_expr(node: ast.AST, set_locals: Set[str], set_attrs: Set[str]) -> bool:
    """Conservatively: does this expression produce a set/frozenset?"""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = call_name(node)
        if isinstance(node.func, ast.Name) and name in ("set", "frozenset"):
            return True
        if isinstance(node.func, ast.Attribute) and name in SET_METHODS:
            return _is_set_expr(node.func.value, set_locals, set_attrs)
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
        return _is_set_expr(node.left, set_locals, set_attrs) or _is_set_expr(
            node.right, set_locals, set_attrs
        )
    if isinstance(node, ast.Name):
        return node.id in set_locals
    if isinstance(node, ast.Attribute):
        return node.attr in set_attrs
    if isinstance(node, ast.IfExp):
        return _is_set_expr(node.body, set_locals, set_attrs) or _is_set_expr(
            node.orelse, set_locals, set_attrs
        )
    return False


_TRANSPARENT_ITER_WRAPPERS = frozenset({"list", "tuple", "enumerate", "reversed", "iter"})


def _unwrap_iter(node: ast.AST) -> ast.AST:
    """Peel list()/tuple()/enumerate()/reversed() — they preserve order.

    ``sorted()`` is deliberately *not* peeled: it is the sanctioned way to
    iterate a set deterministically.
    """
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _TRANSPARENT_ITER_WRAPPERS
        and node.args
    ):
        node = node.args[0]
    return node


def _annotation_is_set(annotation: Optional[ast.AST]) -> bool:
    if annotation is None:
        return False
    if isinstance(annotation, ast.Name):
        return annotation.id in ("set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet")
    if isinstance(annotation, ast.Attribute):
        return annotation.attr in ("Set", "FrozenSet", "MutableSet", "AbstractSet")
    if isinstance(annotation, ast.Subscript):
        return _annotation_is_set(annotation.value)
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.strip()
        return text.split("[", 1)[0].strip().lower() in ("set", "frozenset")
    return False


def _function_nodes(tree: ast.Module) -> Iterator[ast.AST]:
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node


def _iter_comprehension_iters(node: ast.AST) -> Iterator[ast.AST]:
    if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
        for comp in node.generators:
            yield comp.iter


class _BranchWalker:
    """Shared recursive walker for "collective inside a flagged branch" rules."""

    def __init__(self, predicate) -> None:
        self._predicate = predicate

    def walk(self, tree: ast.Module) -> Iterator[Tuple[ast.Call, str, ast.AST]]:
        yield from self._walk_body(tree.body, flagged=None)

    def _walk_body(self, body: Sequence[ast.stmt], flagged: Optional[ast.AST]) -> Iterator:
        for stmt in body:
            yield from self._walk_stmt(stmt, flagged)

    def _walk_stmt(self, stmt: ast.stmt, flagged: Optional[ast.AST]) -> Iterator:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            # A nested def is not executed here; reset the branch context.
            yield from self._walk_body(stmt.body, flagged=None)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            inner = stmt if self._predicate(stmt.test) else flagged
            yield from self._walk_body(stmt.body, inner)
            # `else:` of a flagged `if` is just as rank-dependent as the body.
            yield from self._walk_body(stmt.orelse, inner)
            return
        for child_body in self._stmt_bodies(stmt):
            yield from self._walk_body(child_body, flagged)
        if flagged is not None:
            for node in self._stmt_exprs(stmt):
                for call in ast.walk(node):
                    if isinstance(call, ast.Call) and call_name(call) in COLLECTIVE_CALLS:
                        yield call, call_name(call), flagged

    @staticmethod
    def _stmt_bodies(stmt: ast.stmt) -> Iterator[Sequence[ast.stmt]]:
        for field in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                yield value
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    @staticmethod
    def _stmt_exprs(stmt: ast.stmt) -> Iterator[ast.AST]:
        for field, value in ast.iter_fields(stmt):
            if field in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.AST):
                yield value
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.AST):
                        yield item


# ----------------------------------------------------------------------------- rules


class RankDependentCollectiveRule(Rule):
    """SPMD101: a collective lexically inside a rank-conditioned branch.

    If only some ranks execute a collective, the others wait forever (or the
    rendezvous pairs the wrong calls).  Rank tests may guard *payload
    construction* (e.g. only the source rank packs a broadcast buffer), but
    the collective call itself must sit outside the branch.
    """

    rule_id = "SPMD101"
    rule_name = "rank-dependent-collective"

    def check(self, path: str, tree: ast.Module) -> Iterator[Finding]:
        walker = _BranchWalker(_mentions_rank)
        for call, name, branch in walker.walk(tree):
            yield self.finding(
                path,
                call,
                f"collective {name}() executed under a rank-dependent branch "
                f"(condition at line {branch.test.lineno}); ranks that skip it will "
                "deadlock or mis-pair the rendezvous — hoist the call out and guard "
                "only the payload",
            )


class LostWorkHandleRule(Rule):
    """SPMD102: a nonblocking post whose WorkHandle is dropped or never waited."""

    rule_id = "SPMD102"
    rule_name = "lost-work-handle"

    def check(self, path: str, tree: ast.Module) -> Iterator[Finding]:
        for func in _function_nodes(tree):
            yield from self._check_function(path, func)

    def _check_function(self, path: str, func: ast.AST) -> Iterator[Finding]:
        candidates: Dict[str, ast.Call] = {}
        loads: Set[str] = set()
        dels: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Expr) and isinstance(node.value, ast.Call):
                name = call_name(node.value)
                if name in NONBLOCKING_CALLS:
                    yield self.finding(
                        path,
                        node.value,
                        f"WorkHandle returned by {name}() is discarded; the collective "
                        "is never finished (lost comm) — keep the handle and call "
                        "finish()/wait(), or use the blocking variant",
                    )
            elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                name = call_name(node.value)
                if (
                    name in NONBLOCKING_CALLS
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                ):
                    candidates[node.targets[0].id] = node.value
            elif isinstance(node, ast.Name):
                if isinstance(node.ctx, ast.Load):
                    loads.add(node.id)
                elif isinstance(node.ctx, ast.Del):
                    dels.add(node.id)
        for var, call in candidates.items():
            if var not in loads:
                verb = "del'd" if var in dels else "assigned but never used"
                yield self.finding(
                    path,
                    call,
                    f"WorkHandle {var!r} from {call_name(call)}() is {verb}; the "
                    "collective is never finished (lost comm)",
                )


class UnorderedIterationRule(Rule):
    """SPMD103: iterating a set/frozenset (hash order ⇒ cross-rank divergence).

    Set iteration order depends on insertion history and per-process hash
    state.  Any comm plan, bucket layout, or gate registration derived from it
    can differ across ranks.  ``sorted(...)`` is the sanctioned escape hatch.

    Inference sources: literal set expressions, set-typed locals (assigned
    only set-producing values), and attribute names that *anywhere in the
    linted tree* are assigned a set (or annotated as one) — membership tests
    (``x in s``) are always fine and never flagged.
    """

    rule_id = "SPMD103"
    rule_name = "unordered-iteration"

    def __init__(self) -> None:
        self._set_attrs: Set[str] = set()

    def collect(self, path: str, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign) and _is_set_expr(node.value, set(), self._set_attrs):
                for target in node.targets:
                    if _is_self_attr(target):
                        self._set_attrs.add(target.attr)
            elif isinstance(node, ast.AnnAssign) and _annotation_is_set(node.annotation):
                if _is_self_attr(node.target):
                    self._set_attrs.add(node.target.attr)
                elif isinstance(node.target, ast.Name):
                    # `pending: set` parameter-style annotation inside a class body
                    self._set_attrs.add(node.target.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                annotated = {
                    arg.arg
                    for arg in list(node.args.args) + list(node.args.kwonlyargs)
                    if _annotation_is_set(arg.annotation)
                }
                if annotated:
                    for inner in ast.walk(node):
                        if isinstance(inner, ast.Assign):
                            if isinstance(inner.value, ast.Name) and inner.value.id in annotated:
                                for target in inner.targets:
                                    if _is_self_attr(target):
                                        self._set_attrs.add(target.attr)

    def check(self, path: str, tree: ast.Module) -> Iterator[Finding]:
        for func in _function_nodes(tree):
            set_locals = self._set_locals(func)
            for node in ast.walk(func):
                iters: List[ast.AST] = []
                if isinstance(node, (ast.For, ast.AsyncFor)):
                    iters.append(node.iter)
                iters.extend(_iter_comprehension_iters(node))
                for raw_iter in iters:
                    target = _unwrap_iter(raw_iter)
                    if _is_set_expr(target, set_locals, self._set_attrs):
                        yield self.finding(
                            path,
                            raw_iter,
                            self._message(target),
                        )

    @staticmethod
    def _message(target: ast.AST) -> str:
        if isinstance(target, ast.Attribute):
            what = f"set-typed attribute '{target.attr}'"
        elif isinstance(target, ast.Name):
            what = f"set-typed local '{target.id}'"
        else:
            what = "a set expression"
        return (
            f"iteration over {what}: set order is per-process hash order, so any "
            "comm plan or schedule derived from it can diverge across ranks — "
            "iterate a deterministic sequence or wrap in sorted(...)"
        )

    @staticmethod
    def _set_locals(func: ast.AST) -> Set[str]:
        assigned_set: Set[str] = set()
        assigned_other: Set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                is_set = _is_set_expr(node.value, assigned_set, set())
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        (assigned_set if is_set else assigned_other).add(target.id)
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                if _annotation_is_set(node.annotation):
                    assigned_set.add(node.target.id)
                elif node.value is not None:
                    assigned_other.add(node.target.id)
        for arg in _func_args(func):
            if _annotation_is_set(arg.annotation):
                assigned_set.add(arg.arg)
        return assigned_set - assigned_other


def _func_args(func: ast.AST) -> List[ast.arg]:
    args = func.args
    return list(args.posonlyargs) + list(args.args) + list(args.kwonlyargs)


class UnlockedSharedMutationRule(Rule):
    """SPMD104: lock-guarded attribute mutated outside the lock.

    Per class: attributes mutated under ``with self.<lock>:`` (where
    ``self.<lock>`` was assigned ``threading.Lock()``/``RLock()``) form the
    guarded set; any mutation of a guarded attribute outside such a block —
    except in ``__init__`` — is a race against the comm/trace threads.
    """

    rule_id = "SPMD104"
    rule_name = "unlocked-shared-mutation"

    def check(self, path: str, tree: ast.Module) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(path, node)

    def _check_class(self, path: str, cls: ast.ClassDef) -> Iterator[Finding]:
        lock_attrs = self._lock_attrs(cls)
        if not lock_attrs:
            return
        guarded: Set[str] = set()
        for method in cls.body:
            if isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan(method.body, lock_attrs, in_lock=False, guarded=guarded, findings=None)
        if not guarded:
            return
        for method in cls.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction happens-before sharing
            findings: List[Tuple[ast.AST, str]] = []
            self._scan(method.body, lock_attrs, in_lock=False, guarded=guarded, findings=findings)
            for node, attr in findings:
                yield self.finding(
                    path,
                    node,
                    f"attribute 'self.{attr}' is mutated under the lock elsewhere in "
                    f"class {cls.name!r} but mutated here without holding it — a race "
                    "against the threads that respect the lock",
                )

    @staticmethod
    def _lock_attrs(cls: ast.ClassDef) -> Set[str]:
        locks: Set[str] = set()
        for node in ast.walk(cls):
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
                name = call_name(node.value)
                if name in ("Lock", "RLock", "Condition"):
                    for target in node.targets:
                        if _is_self_attr(target):
                            locks.add(target.attr)
        return locks

    def _scan(self, body, lock_attrs, in_lock, guarded, findings) -> None:
        for stmt in body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._scan(stmt.body, lock_attrs, in_lock, guarded, findings)
                continue
            if isinstance(stmt, ast.With):
                holds = any(
                    _is_self_attr(item.context_expr, None)
                    and item.context_expr.attr in lock_attrs
                    for item in stmt.items
                )
                self._scan(stmt.body, lock_attrs, in_lock or holds, guarded, findings)
                continue
            for mutated_node, attr in self._mutations(stmt):
                if in_lock:
                    guarded.add(attr)
                elif findings is not None and attr in guarded:
                    findings.append((mutated_node, attr))
            for child in self._child_bodies(stmt):
                self._scan(child, lock_attrs, in_lock, guarded, findings)

    @staticmethod
    def _child_bodies(stmt: ast.stmt):
        for field in ("body", "orelse", "finalbody"):
            value = getattr(stmt, field, None)
            if isinstance(value, list) and value and isinstance(value[0], ast.stmt):
                yield value
        for handler in getattr(stmt, "handlers", []) or []:
            yield handler.body

    @staticmethod
    def _mutations(stmt: ast.stmt) -> Iterator[Tuple[ast.AST, str]]:
        """Mutations in this statement's *own* expressions (child bodies are
        scanned by the recursive walk so nested ``with lock:`` is respected)."""
        targets: List[ast.AST] = []
        if isinstance(stmt, ast.Assign):
            targets = list(stmt.targets)
        elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
            targets = [stmt.target]
        elif isinstance(stmt, ast.Delete):
            targets = list(stmt.targets)
        for target in targets:
            base = target
            while isinstance(base, ast.Subscript):
                base = base.value
            if _is_self_attr(base):
                yield target, base.attr
        for expr in _BranchWalker._stmt_exprs(stmt):
            for node in ast.walk(expr):
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr in MUTATOR_METHODS
                ):
                    base = node.func.value
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if _is_self_attr(base):
                        yield node, base.attr


class UnorderedAccumulationRule(Rule):
    """SPMD105: float reduction over a set — accumulation order is hash order.

    ``sum()`` over a set of floats gives different roundings on different
    ranks (and different runs); anything allreduced or compared cross-rank
    must accumulate in a deterministic order (``sum(sorted(s))`` or a list).
    """

    rule_id = "SPMD105"
    rule_name = "unordered-accumulation"

    _REDUCERS = frozenset({"sum", "fsum", "prod", "mean"})

    def check(self, path: str, tree: ast.Module) -> Iterator[Finding]:
        for func in _function_nodes(tree):
            set_locals = UnorderedIterationRule._set_locals(func)
            for node in ast.walk(func):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if name not in self._REDUCERS or not node.args:
                    continue
                arg = _unwrap_iter(node.args[0])
                hazardous = _is_set_expr(arg, set_locals, set())
                if not hazardous and isinstance(arg, ast.GeneratorExp):
                    hazardous = any(
                        _is_set_expr(_unwrap_iter(comp.iter), set_locals, set())
                        for comp in arg.generators
                    )
                if hazardous:
                    yield self.finding(
                        path,
                        node,
                        f"{name}() over a set accumulates in per-process hash order; "
                        "float rounding then differs across ranks — accumulate over "
                        "sorted(...) or an ordered sequence",
                    )


class CollectiveInExceptRule(Rule):
    """SPMD106: a collective inside an ``except`` handler.

    Only the rank that raised runs the handler; its collective has no peers
    and deadlocks the group.  Error recovery must re-synchronize out-of-band
    (poison/abort), never via a collective on the failing path.
    """

    rule_id = "SPMD106"
    rule_name = "collective-in-except"

    def check(self, path: str, tree: ast.Module) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for inner in self._walk_pruned(node.body):
                if isinstance(inner, ast.Call) and call_name(inner) in COLLECTIVE_CALLS:
                    yield self.finding(
                        path,
                        inner,
                        f"collective {call_name(inner)}() inside an except handler: "
                        "only the raising rank executes it, so the group deadlocks — "
                        "recover out-of-band instead",
                    )

    @staticmethod
    def _walk_pruned(body: Sequence[ast.stmt]) -> Iterator[ast.AST]:
        """ast.walk, but without descending into nested function/class defs."""
        stack: List[ast.AST] = list(body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))


class NondeterministicGuardRule(Rule):
    """SPMD107: a collective under a branch conditioned on time or randomness."""

    rule_id = "SPMD107"
    rule_name = "nondeterministic-guard"

    def check(self, path: str, tree: ast.Module) -> Iterator[Finding]:
        walker = _BranchWalker(_mentions_nondeterminism)
        for call, name, branch in walker.walk(tree):
            yield self.finding(
                path,
                call,
                f"collective {name}() guarded by a time/random-dependent condition "
                f"(line {branch.test.lineno}); ranks evaluate it independently and may "
                "disagree — derive the decision from rank-invariant (allreduced) state",
            )


def DEFAULT_RULES() -> List[Rule]:
    """Fresh instances of every built-in rule (rules hold collect-phase state)."""
    return [
        RankDependentCollectiveRule(),
        LostWorkHandleRule(),
        UnorderedIterationRule(),
        UnlockedSharedMutationRule(),
        UnorderedAccumulationRule(),
        CollectiveInExceptRule(),
        NondeterministicGuardRule(),
    ]


def all_rule_ids() -> List[str]:
    return [rule.rule_id for rule in DEFAULT_RULES()]
