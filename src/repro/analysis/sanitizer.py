"""Runtime SPMD sanitizer: collective-schedule cross-checking and buffer races.

The async comm stack (:mod:`repro.distributed.collectives`, the backward-hook
:class:`~repro.training.pipeline.GradientPipeline`, the adaptive K-FAC
scheduler) rests on invariants no backend enforces:

* every rank posts the *same* collectives in the *same* order on the *same*
  groups (op, dtype, shape, fusion plan) — divergence means a silent
  mis-rendezvous or a deadlock;
* a bucket buffer handed to a nonblocking ``post()`` must not be touched
  until the matching ``finish()``/``wait()`` — touching it is a data race
  against the in-flight collective;
* every posted :class:`~repro.distributed.backend.WorkHandle` is eventually
  finished — a dropped handle is lost communication.

With ``REPRO_SANITIZE=1`` (or ``ThreadedWorld(..., sanitize=True)``) a
:class:`CollectiveSanitizer` is attached to the world and records each rank's
collective sequence ``(op, group, dtype, shape, nbytes, call-site)``.  Ranks
are cross-checked *as they post* (the rendezvous slot index pairs matching
calls, so the first divergent post raises immediately instead of deadlocking)
and again at barriers, where per-group sequence counts must agree.  The
companion :class:`BufferAccessChecker` epoch-stamps posted bucket buffers:
they are frozen (``writeable=False``) and fingerprinted between post and
finish, so both a write *through* the buffer and a mutation through a
pre-existing view are caught, each reported with the posting call-site.

Violations raise structured :class:`SanitizerError`\\ s and emit
``sanitize/*`` instant events through any attached per-rank tracer
(:mod:`repro.observability`).  With the sanitizer disabled no check runs and
training is bitwise identical; with it enabled only checks run — numerics are
untouched either way.
"""

from __future__ import annotations

import hashlib
import os
import sys
import threading
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "sanitize_enabled",
    "capture_call_site",
    "SanitizerError",
    "CollectiveSanitizer",
    "BufferAccessChecker",
]


def sanitize_enabled() -> bool:
    """Whether the runtime sanitizer is on by default, via the environment.

    Setting ``REPRO_SANITIZE=1`` (or ``true``/``yes``/``on``) makes every
    :class:`~repro.distributed.threaded.ThreadedWorld` construct a
    :class:`CollectiveSanitizer` — the CI ``lint-and-sanitize`` job runs the
    whole suite this way.
    """
    return os.environ.get("REPRO_SANITIZE", "").strip().lower() in ("1", "true", "yes", "on")


#: Frames whose filename contains one of these fragments are machinery, not
#: the interesting "who asked for this collective" frame.
_INTERNAL_FRAGMENTS = (
    "repro/analysis/",
    "repro/distributed/",
    "repro\\analysis\\",
    "repro\\distributed\\",
)


def capture_call_site(extra_internal: Tuple[str, ...] = ()) -> str:
    """Best-effort ``file.py:line in func`` of the first non-machinery frame."""
    frame = sys._getframe(1)
    fragments = _INTERNAL_FRAGMENTS + extra_internal
    while frame is not None:
        filename = frame.f_code.co_filename
        if not any(fragment in filename for fragment in fragments):
            return f"{os.path.basename(filename)}:{frame.f_lineno} in {frame.f_code.co_name}"
        frame = frame.f_back
    return "<unknown>"


class SanitizerError(RuntimeError):
    """A structured SPMD-invariant violation.

    Attributes
    ----------
    kind:
        Machine-readable violation class: ``"schedule-divergence"``,
        ``"collective-timeout"``, ``"buffer-race"``, ``"use-before-finish"``,
        ``"lost-comm"`` or ``"plan-divergence"``.
    rank:
        The rank that detected the violation (None for world-level checks).
    call_site:
        ``file.py:line in func`` of the offending operation when known.
    details:
        Free-form structured context (per-rank signatures, pending keys, ...).
    """

    def __init__(
        self,
        kind: str,
        message: str,
        rank: Optional[int] = None,
        call_site: Optional[str] = None,
        details: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.kind = kind
        self.rank = rank
        self.call_site = call_site
        self.details = dict(details or {})
        parts = [f"[{kind}]"]
        if rank is not None:
            parts.append(f"rank {rank}:")
        parts.append(message)
        if call_site:
            parts.append(f"(at {call_site})")
        super().__init__(" ".join(parts))


def _value_signature(value: Optional[np.ndarray]) -> Optional[Tuple[str, Tuple[int, ...], int]]:
    if value is None:
        return None
    array = np.asarray(value)
    return (str(array.dtype), tuple(array.shape), int(array.nbytes))


class _SlotSignature:
    """First-poster signature of one rendezvous slot, compared against later posters."""

    __slots__ = ("rank", "op", "src", "fused_count", "value_sig", "call_site", "phase", "seen")

    def __init__(self, rank, op, src, fused_count, value_sig, call_site, phase) -> None:
        self.rank = rank
        self.op = op
        self.src = src
        self.fused_count = fused_count
        self.value_sig = value_sig
        self.call_site = call_site
        self.phase = phase
        self.seen = 1


class BufferAccessChecker:
    """Epoch-stamped in-flight buffer tracking (use/mutate-before-finish).

    ``stamp()`` freezes an array posted to a nonblocking collective
    (``writeable=False`` where the array allows it) and fingerprints its
    bytes; ``release()`` re-verifies the fingerprint when the collective is
    finished and unfreezes the array.  A mutation through any alias between
    the two raises a :class:`SanitizerError` naming the posting call-site.
    ``assert_finished()`` is the read-side guard: consumers (and tests) call
    it before touching data a pending collective still owns.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._epoch = 0
        # token (epoch) -> (key, array, digest, restore_writeable, call_site, tracer)
        self._pending: Dict[int, Tuple[str, np.ndarray, bytes, bool, str, Any]] = {}

    @staticmethod
    def _digest(array: np.ndarray) -> bytes:
        return hashlib.blake2b(np.ascontiguousarray(array).tobytes(), digest_size=16).digest()

    def stamp(self, key: str, array: np.ndarray, tracer: Any = None) -> int:
        """Mark ``array`` as owned by an in-flight collective; returns a token."""
        call_site = capture_call_site()
        digest = self._digest(array)
        restore = False
        try:
            if array.flags.writeable:
                array.flags.writeable = False
                restore = True
        except ValueError:
            restore = False  # not freezable (e.g. a view of a read-only base)
        with self._lock:
            self._epoch += 1
            token = self._epoch
            self._pending[token] = (key, array, digest, restore, call_site, tracer)
        return token

    def release(self, token: int) -> None:
        """Finish the stamped epoch: verify the bytes and unfreeze the array."""
        with self._lock:
            entry = self._pending.pop(token, None)
        if entry is None:
            return  # release is idempotent, mirroring WorkHandle.finish()
        key, array, digest, restore, call_site, tracer = entry
        if restore:
            array.flags.writeable = True
        if self._digest(array) != digest:
            self._emit(tracer, kind="buffer-race", key=key, posted_at=call_site)
            raise SanitizerError(
                "buffer-race",
                f"bucket buffer {key!r} was mutated between post() and finish(); "
                f"it was posted at {call_site} and must stay untouched while in flight",
                call_site=call_site,
                details={"key": key},
            )

    def assert_finished(self, key: str, tracer: Any = None) -> None:
        """Raise if any in-flight collective still owns a buffer stamped ``key``."""
        with self._lock:
            open_entries = [entry for entry in self._pending.values() if entry[0] == key]
        if open_entries:
            posted_at = open_entries[0][4]
            reader = capture_call_site()
            self._emit(tracer or open_entries[0][5], kind="use-before-finish", key=key, read_at=reader)
            raise SanitizerError(
                "use-before-finish",
                f"buffer {key!r} read at {reader} while its collective (posted at "
                f"{posted_at}) has not finished; call finish()/drain() first",
                call_site=reader,
                details={"key": key, "posted_at": posted_at},
            )

    def pending_keys(self) -> List[str]:
        with self._lock:
            return [entry[0] for entry in self._pending.values()]

    @staticmethod
    def _emit(tracer: Any, **attrs: Any) -> None:
        if tracer is not None and getattr(tracer, "enabled", False):
            tracer.instant("sanitize/violation", category="sanitize", **attrs)


class CollectiveSanitizer:
    """Cross-rank collective-schedule checker for one world.

    One instance is shared by every rank of a
    :class:`~repro.distributed.threaded.ThreadedWorld`.  Integration points:

    * ``on_post`` — called (outside backend locks) for every collective a
      rank posts; the rendezvous index ``(group, seq)`` pairs matching calls
      across ranks, so the first rank whose ``(op, src, dtype, shape,
      fused_count)`` disagrees with an earlier poster raises immediately;
    * ``on_finish`` / ``assert_drained`` — pending-handle accounting, checked
      at pipeline flushes (a nonzero count there is lost communication);
    * ``barrier_check`` — run by the backend's barrier when all ranks have
      arrived: per-group posted-sequence counts must agree;
    * ``check_consistent`` — rendezvous-free agreement check for values that
      must be identical on every rank (e.g. the adaptive K-FAC refresh plan).

    A violation poisons the world through the bound callback (waking every
    blocked rank) before raising, so a divergent program *fails* instead of
    deadlocking.
    """

    def __init__(self, world_size: int) -> None:
        self.world_size = int(world_size)
        self.buffers = BufferAccessChecker()
        self.violation: Optional[SanitizerError] = None
        self._lock = threading.Lock()
        self._tracers: Dict[int, Any] = {}
        self._phase: Dict[int, str] = {}
        self._poison: Optional[Callable[[SanitizerError, bool], None]] = None
        # (group, seq) -> first-poster signature, dropped once the group is full
        self._signatures: Dict[Tuple, _SlotSignature] = {}
        # rank -> group -> number of collectives posted
        self._counts: Dict[int, Dict[Tuple[int, ...], int]] = {}
        self._pending_handles: Dict[int, int] = {}
        self.leaked_handles = 0
        # tag -> (first rank, fingerprint, seen) for check_consistent
        self._consistency: Dict[str, Tuple[int, Any, int]] = {}

    # ------------------------------------------------------------------ wiring
    def bind_poison(self, callback: Callable[[SanitizerError, bool], None]) -> None:
        """Install the world's poison hook (wakes blocked ranks on violation)."""
        self._poison = callback

    def attach_tracer(self, rank: int, tracer: Any) -> None:
        """Adopt ``tracer`` for ``sanitize/*`` instants detected on ``rank``."""
        if tracer is not None and getattr(tracer, "enabled", False):
            with self._lock:
                self._tracers[rank] = tracer

    def set_phase(self, rank: int, phase: str) -> None:
        """Label ``rank``'s current program phase (shown in divergence reports)."""
        with self._lock:
            self._phase[rank] = phase

    # --------------------------------------------------------------- violations
    def _raise(self, error: SanitizerError, abort_barrier: bool = True) -> None:
        with self._lock:
            if self.violation is None:
                self.violation = error
            tracer = self._tracers.get(error.rank) if error.rank is not None else None
            if tracer is None and self._tracers:
                tracer = next(iter(self._tracers.values()))
        if tracer is not None and getattr(tracer, "enabled", False):
            tracer.instant(
                "sanitize/violation", category="sanitize", kind=error.kind, message=str(error)
            )
        if self._poison is not None:
            self._poison(error, abort_barrier)
        raise error

    def propagated(self) -> SanitizerError:
        """A copy of the recorded violation for ranks woken by the poison hook."""
        first = self.violation
        if first is None:
            return SanitizerError("schedule-divergence", "world poisoned by another rank")
        return SanitizerError(
            first.kind,
            f"(propagated from the detecting rank) {first}",
            call_site=first.call_site,
            details=first.details,
        )

    # -------------------------------------------------------------------- posts
    def on_post(
        self,
        rank: int,
        op: str,
        group: Tuple[int, ...],
        seq: int,
        src: Optional[int],
        value: Optional[np.ndarray],
        fused_count: int,
    ) -> None:
        """Record + cross-check one posted collective (called before rendezvous)."""
        call_site = capture_call_site()
        value_sig = _value_signature(value)
        key = (group, seq)
        mismatch: Optional[Tuple[str, _SlotSignature]] = None
        with self._lock:
            phase = self._phase.get(rank, "")
            self._counts.setdefault(rank, {})[group] = self._counts.setdefault(rank, {}).get(group, 0) + 1
            self._pending_handles[rank] = self._pending_handles.get(rank, 0) + 1
            sig = self._signatures.get(key)
            if sig is None:
                self._signatures[key] = _SlotSignature(rank, op, src, int(fused_count), value_sig, call_site, phase)
            else:
                sig.seen += 1
                if sig.seen >= len(group):
                    self._signatures.pop(key, None)
                if (op, src, int(fused_count)) != (sig.op, sig.src, sig.fused_count):
                    mismatch = ("op/src/fusion", sig)
                elif value_sig is not None and sig.value_sig is not None and value_sig != sig.value_sig:
                    mismatch = ("dtype/shape", sig)
                elif value_sig is not None and sig.value_sig is None:
                    sig.value_sig = value_sig  # first concrete payload seen (broadcast src)
        if mismatch is not None:
            what, sig = mismatch
            self._raise(
                SanitizerError(
                    "schedule-divergence",
                    f"collective #{seq} on group {group} diverges across ranks ({what}): "
                    f"rank {rank} posted {op}(src={src}, fused={fused_count}, sig={value_sig}) "
                    f"in phase {self._phase.get(rank, '') or '?'} at {call_site}, but rank "
                    f"{sig.rank} posted {sig.op}(src={sig.src}, fused={sig.fused_count}, "
                    f"sig={sig.value_sig}) in phase {sig.phase or '?'} at {sig.call_site}",
                    rank=rank,
                    call_site=call_site,
                    details={
                        "group": group,
                        "seq": seq,
                        "this": (rank, op, src, fused_count, value_sig, call_site),
                        "other": (sig.rank, sig.op, sig.src, sig.fused_count, sig.value_sig, sig.call_site),
                    },
                )
            )

    def on_finish(self, rank: int) -> None:
        with self._lock:
            self._pending_handles[rank] = max(0, self._pending_handles.get(rank, 0) - 1)

    def on_leaked(self, rank: int) -> None:
        """A posted WorkHandle was garbage-collected without finish()."""
        with self._lock:
            self.leaked_handles += 1
            self._pending_handles[rank] = max(0, self._pending_handles.get(rank, 0) - 1)

    def pending_handles(self, rank: int) -> int:
        with self._lock:
            return self._pending_handles.get(rank, 0)

    def assert_drained(self, rank: int, where: str, tracer: Any = None) -> None:
        """Raise ``lost-comm`` if ``rank`` still has unfinished posted handles."""
        if tracer is not None:
            self.attach_tracer(rank, tracer)
        pending = self.pending_handles(rank)
        if tracer is not None and getattr(tracer, "enabled", False):
            tracer.instant("sanitize/flush_check", category="sanitize", where=where, pending=pending)
        if pending:
            self._raise(
                SanitizerError(
                    "lost-comm",
                    f"{pending} posted collective handle(s) still unfinished at {where}; "
                    "every post() needs a matching finish()/drain() on all paths",
                    rank=rank,
                    details={"where": where, "pending": pending},
                )
            )

    # ----------------------------------------------------------------- barriers
    def barrier_check(self) -> None:
        """Cross-rank check at a barrier: per-group posted counts must agree.

        Runs while every rank is blocked in the barrier, so the counts are
        quiescent.  Counts are compared only among each group's members (a
        rank outside a group legitimately never posts on it).
        """
        with self._lock:
            groups = {group for counts in self._counts.values() for group in counts}
            for group in sorted(groups):
                per_rank = {
                    member: self._counts.get(member, {}).get(group, 0) for member in group
                }
                if len(set(per_rank.values())) > 1:
                    detail = ", ".join(f"rank {r}: {n}" for r, n in sorted(per_rank.items()))
                    error = SanitizerError(
                        "schedule-divergence",
                        f"ranks reached a barrier with diverging collective counts on "
                        f"group {group} ({detail}); all ranks of a group must post the "
                        "same sequence of collectives",
                        details={"group": group, "counts": per_rank},
                    )
                    break
            else:
                return
        # Running as the ``threading.Barrier`` action: the barrier's internal
        # (non-reentrant) lock is held, and raising out of the action already
        # breaks the barrier for every waiter -- so the poison callback must
        # not call ``Barrier.abort()`` here or it would deadlock on that lock.
        self._raise(error, abort_barrier=False)

    # ------------------------------------------------------------- plan checks
    def check_consistent(self, rank: int, tag: str, fingerprint: Any) -> None:
        """Assert a value that must be rank-invariant really is (no extra comm).

        Each rank reports ``fingerprint`` under a unique, strictly program-
        ordered ``tag`` (e.g. ``"kfac/plan:123"``); the first reporter pins
        the expected value and later reporters compare against it.  Used for
        the adaptive K-FAC refresh plan, which every rank must derive
        identically from allreduced state.
        """
        if self.world_size <= 1:
            return
        mismatch: Optional[Tuple[int, Any]] = None
        with self._lock:
            entry = self._consistency.get(tag)
            if entry is None:
                self._consistency[tag] = (rank, fingerprint, 1)
            else:
                first_rank, expected, seen = entry
                seen += 1
                if seen >= self.world_size:
                    self._consistency.pop(tag, None)
                else:
                    self._consistency[tag] = (first_rank, expected, seen)
                if fingerprint != expected:
                    mismatch = (first_rank, expected)
        if mismatch is not None:
            first_rank, expected = mismatch
            self._raise(
                SanitizerError(
                    "plan-divergence",
                    f"rank-invariant value {tag!r} diverges: rank {rank} derived "
                    f"{fingerprint!r} but rank {first_rank} derived {expected!r}",
                    rank=rank,
                    details={"tag": tag, "this": fingerprint, "other": expected},
                )
            )

    # -------------------------------------------------------------- diagnostics
    def pending_diagnostics(self) -> Dict[str, Any]:
        """What is still in flight — attached to timeout errors."""
        with self._lock:
            return {
                "unmatched_slots": {
                    f"group={group} seq={seq}": f"{sig.op} first posted by rank {sig.rank} at {sig.call_site}"
                    for (group, seq), sig in self._signatures.items()
                },
                "pending_handles": dict(self._pending_handles),
                "phases": dict(self._phase),
            }
