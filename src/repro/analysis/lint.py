"""CLI for the SPMD lint pass: ``python -m repro.analysis.lint src/repro``.

Exit codes: 0 — clean; 1 — findings; 2 — lint errors (unreadable/unparsable
input).  ``--format json`` emits the machine-readable report for CI.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .linter import lint_paths
from .report import render_human, render_json
from .rules import DEFAULT_RULES, all_rule_ids

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis.lint",
        description="SPMD correctness lint for the repro async comm stack.",
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        default=None,
        help="comma-separated rule IDs to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="list available rules and exit"
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in DEFAULT_RULES():
            doc = (rule.__doc__ or "").strip().splitlines()[0]
            print(f"{rule.rule_id}  {rule.rule_name:<28} {doc}")
        return 0
    if not args.paths:
        parser.print_usage(sys.stderr)
        print("error: no paths given (or use --list-rules)", file=sys.stderr)
        return 2

    rules = DEFAULT_RULES()
    if args.select:
        wanted = {token.strip() for token in args.select.split(",") if token.strip()}
        unknown = wanted - set(all_rule_ids())
        if unknown:
            print(f"unknown rule ID(s): {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.rule_id in wanted]

    result = lint_paths(args.paths, rules=rules)
    print(render_json(result) if args.format == "json" else render_human(result))
    if result.errors:
        return 2
    return 1 if result.findings else 0


if __name__ == "__main__":
    sys.exit(main())
