"""SPMD correctness tooling: static collective-order lint + runtime sanitizer.

Two complementary halves (see the README's "Correctness tooling" section):

* **Static lint** — ``python -m repro.analysis.lint src/repro`` runs AST
  rules (SPMD101–SPMD107) against the hazard classes of the async comm
  stack: rank-dependent collectives, lost ``WorkHandle``\\ s, unordered
  set iteration in comm planning, unlocked shared-state mutation,
  unordered float accumulation, collectives in ``except`` handlers and
  under nondeterministic guards.
* **Runtime sanitizer** — ``REPRO_SANITIZE=1`` attaches a
  :class:`CollectiveSanitizer` to every ``ThreadedWorld``: per-rank
  collective sequences are cross-checked as they post, barriers verify
  per-group schedule counts, and in-flight bucket buffers are frozen and
  fingerprinted so use/mutate-before-``finish()`` races surface with the
  offending call-site instead of corrupting training or deadlocking.
"""

from .linter import LintError, LintResult, lint_paths, lint_sources
from .report import render_human, render_json, result_payload
from .rules import DEFAULT_RULES, Finding, Rule, all_rule_ids
from .sanitizer import (
    BufferAccessChecker,
    CollectiveSanitizer,
    SanitizerError,
    capture_call_site,
    sanitize_enabled,
)

__all__ = [
    "LintError",
    "LintResult",
    "lint_paths",
    "lint_sources",
    "render_human",
    "render_json",
    "result_payload",
    "DEFAULT_RULES",
    "Finding",
    "Rule",
    "all_rule_ids",
    "BufferAccessChecker",
    "CollectiveSanitizer",
    "SanitizerError",
    "capture_call_site",
    "sanitize_enabled",
]
