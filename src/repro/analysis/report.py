"""Reporters for lint results: human-readable text and machine-readable JSON."""

from __future__ import annotations

import json
from typing import Any, Dict

from .linter import LintResult

__all__ = ["render_human", "render_json", "result_payload"]


def render_human(result: LintResult) -> str:
    lines = []
    for error in result.errors:
        lines.append(f"{error.path}: error: {error.message}")
    for finding in result.findings:
        lines.append(finding.format())
    noun = "file" if result.files_checked == 1 else "files"
    summary = (
        f"{len(result.findings)} finding(s), {len(result.errors)} error(s) "
        f"in {result.files_checked} {noun}"
    )
    if result.suppressed:
        summary += f" ({result.suppressed} suppressed)"
    lines.append(summary)
    return "\n".join(lines)


def result_payload(result: LintResult) -> Dict[str, Any]:
    return {
        "version": 1,
        "files_checked": result.files_checked,
        "suppressed": result.suppressed,
        "errors": [{"path": e.path, "message": e.message} for e in result.errors],
        "findings": [
            {
                "rule_id": f.rule_id,
                "rule_name": f.rule_name,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in result.findings
        ],
    }


def render_json(result: LintResult) -> str:
    return json.dumps(result_payload(result), indent=2, sort_keys=True)
