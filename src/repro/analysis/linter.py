"""Lint driver: file discovery, suppression handling, two-phase rule execution.

Suppression syntax (checked against the physical lines a finding's node
spans):

* ``# spmd-ignore`` — suppress every rule on this line;
* ``# spmd-ignore: SPMD103`` / ``# spmd-ignore: SPMD101, SPMD103`` — suppress
  only the listed rule IDs;
* ``# spmd-ignore-file`` / ``# spmd-ignore-file: SPMD104`` — file-level, on
  any of the first ten lines.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from .rules import DEFAULT_RULES, Finding, Rule

__all__ = ["LintError", "LintResult", "lint_paths", "lint_sources"]

_IGNORE_LINE = re.compile(r"#\s*spmd-ignore(?!-file)(?::\s*(?P<ids>[A-Z0-9,\s]+))?")
_IGNORE_FILE = re.compile(r"#\s*spmd-ignore-file(?::\s*(?P<ids>[A-Z0-9,\s]+))?")


@dataclass(frozen=True)
class LintError:
    """A file that could not be linted (I/O or syntax error)."""

    path: str
    message: str


@dataclass
class LintResult:
    findings: List[Finding]
    errors: List[LintError]
    files_checked: int
    suppressed: int

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors


def _ids_from_match(match: "re.Match[str]") -> Optional[Set[str]]:
    raw = match.group("ids")
    if raw is None:
        return None  # bare ignore: all rules
    return {token.strip() for token in raw.split(",") if token.strip()}


class _Suppressions:
    """Parsed ``# spmd-ignore`` comments for one source file."""

    def __init__(self, source: str) -> None:
        # lineno -> None (all rules) | set of rule IDs
        self._by_line: Dict[int, Optional[Set[str]]] = {}
        self._file_all = False
        self._file_ids: Set[str] = set()
        for lineno, line in enumerate(source.splitlines(), start=1):
            if lineno <= 10:
                file_match = _IGNORE_FILE.search(line)
                if file_match:
                    ids = _ids_from_match(file_match)
                    if ids is None:
                        self._file_all = True
                    else:
                        self._file_ids |= ids
            line_match = _IGNORE_LINE.search(line)
            if line_match:
                ids = _ids_from_match(line_match)
                existing = self._by_line.get(lineno, set())
                if ids is None or existing is None:
                    self._by_line[lineno] = None
                else:
                    self._by_line[lineno] = existing | ids

    def suppresses(self, finding: Finding, span: Tuple[int, int]) -> bool:
        if self._file_all or finding.rule_id in self._file_ids:
            return True
        for lineno in range(span[0], span[1] + 1):
            ids = self._by_line.get(lineno, False)
            if ids is False:
                continue
            if ids is None or finding.rule_id in ids:
                return True
        return False


def discover_files(paths: Sequence[str]) -> Tuple[List[str], List[LintError]]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: List[str] = []
    errors: List[LintError] = []
    for path in paths:
        if os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames.sort()
                dirnames[:] = [d for d in dirnames if d not in ("__pycache__", ".git")]
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        files.append(os.path.join(root, filename))
        elif os.path.isfile(path):
            files.append(path)
        else:
            errors.append(LintError(path=path, message="no such file or directory"))
    return sorted(dict.fromkeys(files)), errors


def lint_sources(
    sources: Dict[str, str], rules: Optional[Sequence[Rule]] = None
) -> LintResult:
    """Lint in-memory ``{path: source}`` pairs (the unit-test entry point)."""
    active_rules = list(rules) if rules is not None else DEFAULT_RULES()
    findings: List[Finding] = []
    errors: List[LintError] = []
    suppressed = 0

    parsed: List[Tuple[str, ast.Module, _Suppressions]] = []
    for path in sorted(sources):
        try:
            tree = ast.parse(sources[path], filename=path)
        except SyntaxError as error:
            errors.append(LintError(path=path, message=f"syntax error: {error.msg} (line {error.lineno})"))
            continue
        parsed.append((path, tree, _Suppressions(sources[path])))

    for rule in active_rules:
        for path, tree, _ in parsed:
            rule.collect(path, tree)
    for rule in active_rules:
        for path, tree, suppressions in parsed:
            for finding in rule.check(path, tree):
                if suppressions.suppresses(finding, (finding.line, finding.line)):
                    suppressed += 1
                else:
                    findings.append(finding)

    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
    return LintResult(
        findings=findings, errors=errors, files_checked=len(parsed), suppressed=suppressed
    )


def lint_paths(paths: Sequence[str], rules: Optional[Sequence[Rule]] = None) -> LintResult:
    """Lint files and directories from disk."""
    files, errors = discover_files(paths)
    sources: Dict[str, str] = {}
    for path in files:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                sources[path] = handle.read()
        except OSError as error:
            errors.append(LintError(path=path, message=str(error)))
    result = lint_sources(sources, rules=rules)
    result.errors = errors + result.errors
    return result
