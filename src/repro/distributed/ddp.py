"""Data-parallel training helpers (the DistributedDataParallel analogue).

Gradients are averaged across ranks after the backward pass, mirroring the
bucketed allreduce of ``torch.nn.parallel.DistributedDataParallel`` that the
paper uses for the first-order (data-parallel) part of training (Figure 3,
blue boxes).  By default all gradients travel in one flattened allreduce;
passing ``bucket_cap_mb`` routes them through the asynchronous bucketed
engine (:mod:`repro.distributed.collectives`): buckets are filled in reverse
parameter order (the order gradients become ready during backward, as in
DDP) and all posted nonblocking before any is awaited, so successive buckets
pipeline.  Both paths average elementwise and are bitwise identical.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from ..nn.module import Module, Parameter
from .backend import Communicator
from .collectives import AllreduceSpec, GradientBucketSpec, OverlapScheduler

__all__ = [
    "flatten_arrays",
    "unflatten_array",
    "allreduce_gradients",
    "broadcast_parameters",
    "GradientAveragingSubscriber",
    "DistributedDataParallel",
]


def flatten_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate arrays into a single flat float32 buffer."""
    if not arrays:
        return np.zeros(0, dtype=np.float32)
    return np.concatenate([np.asarray(a, dtype=np.float32).reshape(-1) for a in arrays])


def unflatten_array(flat: np.ndarray, shapes: Sequence[tuple]) -> List[np.ndarray]:
    """Split a flat buffer back into arrays of the given shapes."""
    out: List[np.ndarray] = []
    offset = 0
    for shape in shapes:
        count = int(np.prod(shape)) if shape else 1
        out.append(flat[offset : offset + count].reshape(shape))
        offset += count
    if offset != flat.size:
        raise ValueError("flat buffer size does not match the provided shapes")
    return out


def allreduce_gradients(model: Module, comm: Communicator, bucket_cap_mb: Optional[float] = None) -> None:
    """Average all parameter gradients across the world (explicit/compat path).

    With ``bucket_cap_mb=None`` (default) every gradient travels in a single
    flattened blocking allreduce.  With a cap, gradients are coalesced into
    capped buckets in reverse parameter order and posted through the
    nonblocking ``iallreduce_average`` primitive back-to-back, so buckets
    overlap each other in flight; the numerical result is identical.

    This is the synchronous fallback kept for direct callers; hook-driven
    training uses :class:`GradientAveragingSubscriber` on a
    :class:`~repro.training.pipeline.GradientPipeline`, which posts the same
    buckets while the backward pass is still running and is bitwise
    identical to this function.
    """
    if comm.world_size == 1:
        return
    params = [p for p in model.parameters() if p.grad is not None]
    if not params:
        return
    if bucket_cap_mb is None:
        flat = flatten_arrays([p.grad for p in params])
        reduced = comm.allreduce_average(flat)
        for param, grad in zip(params, unflatten_array(reduced, [p.grad.shape for p in params])):
            param.grad = grad.astype(np.float32)
        return
    # Reverse order: the last layers' gradients are ready first during
    # backward, so their buckets would be posted earliest in a hooked
    # implementation — keep the same deterministic schedule here.
    specs = []
    for index, param in list(enumerate(params))[::-1]:

        def install(reduced: np.ndarray, param=param) -> None:
            param.grad = reduced.astype(np.float32).reshape(param.grad.shape)

        specs.append(
            AllreduceSpec(
                key=str(index),
                payload=np.asarray(param.grad, dtype=np.float32),
                on_complete=install,
            )
        )
    OverlapScheduler(comm, bucket_cap_mb).run_allreduces(specs)


def broadcast_parameters(model: Module, comm: Communicator, src: int = 0) -> None:
    """Broadcast rank ``src``'s parameters to every rank (initial replica synchronization)."""
    if comm.world_size == 1:
        return
    params = list(model.parameters())
    flat_src = flatten_arrays([p.data for p in params]) if comm.rank == src else None
    flat = comm.broadcast(flat_src, src=src)
    for param, data in zip(params, unflatten_array(flat, [p.data.shape for p in params])):
        param.data = data.astype(param.data.dtype).reshape(param.data.shape)


class GradientAveragingSubscriber:
    """DDP gradient averaging as a gradient-pipeline subscriber.

    Registers one bucket spec per trainable parameter, in reverse parameter
    order (the order gradients become ready during backward, exactly as
    ``torch.nn.parallel.DistributedDataParallel`` fills its buckets).  Each
    spec is gated on the parameter's grad-ready event, its payload applies
    the pipeline's micro-batch ``grad_scale`` before the allreduce-average —
    the same scale-then-average ordering as the synchronous path, so results
    are bitwise identical — and completion installs the averaged gradient
    back into ``param.grad``.
    """

    def __init__(self, model: Module) -> None:
        self.model = model

    def pipeline_specs(self, pipeline) -> List[GradientBucketSpec]:
        scale = float(pipeline.grad_scale)
        params = [p for p in self.model.parameters() if p.requires_grad]
        specs: List[GradientBucketSpec] = []
        for index, param in list(enumerate(params))[::-1]:

            def payload(param=param) -> np.ndarray:
                grad = np.asarray(param.grad, dtype=np.float32)
                if scale != 1.0:
                    grad = grad * scale
                return grad

            def install(reduced: np.ndarray, param=param) -> None:
                param.grad = reduced.astype(np.float32).reshape(param.data.shape)

            specs.append(
                GradientBucketSpec(
                    key=f"grad/{index}",
                    shape=param.data.shape,
                    dtype=np.dtype(np.float32),
                    payload=payload,
                    on_complete=install,
                    params=(param,),
                    # A parameter can accumulate gradients in earlier
                    # micro-batches yet sit out the final (armed) backward;
                    # its grad-ready gate then never fires, but the sync path
                    # still scales and averages it — so must flush().
                    flush_ready=lambda param=param: param.grad is not None,
                )
            )
        return specs


class DistributedDataParallel:
    """Thin wrapper bundling a model replica with its communicator.

    Usage mirrors the paper's Listing 1: construct once, call the model as
    usual, then call :meth:`sync_gradients` after ``loss.backward()`` and
    before the preconditioner / optimizer step.
    """

    def __init__(
        self,
        model: Module,
        comm: Communicator,
        broadcast_initial: bool = True,
        bucket_cap_mb: Optional[float] = None,
    ) -> None:
        self.module = model
        self.comm = comm
        self.bucket_cap_mb = bucket_cap_mb
        if broadcast_initial:
            broadcast_parameters(model, comm, src=0)

    def __call__(self, *args, **kwargs):
        return self.module(*args, **kwargs)

    def parameters(self):
        return self.module.parameters()

    def train(self, mode: bool = True) -> "DistributedDataParallel":
        self.module.train(mode)
        return self

    def eval(self) -> "DistributedDataParallel":
        self.module.eval()
        return self

    def sync_gradients(self) -> None:
        """Allreduce-average gradients across all ranks (bucketed when configured)."""
        allreduce_gradients(self.module, self.comm, bucket_cap_mb=self.bucket_cap_mb)

    def subscriber(self) -> GradientAveragingSubscriber:
        """Pipeline subscriber averaging this replica's gradients during backward."""
        return GradientAveragingSubscriber(self.module)
