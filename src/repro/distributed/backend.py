"""Communicator abstractions.

A :class:`Communicator` is the rank-local handle used by DDP training and by
the K-FAC preconditioner for its collectives.  Two backends are provided:

* :class:`SingleProcessCommunicator` — the ``world_size == 1`` no-op backend
  (the "single-process" backend mentioned in paper section 3.4),
* :class:`~repro.distributed.threaded.ThreadedWorld` — an in-process
  multi-rank backend where every rank runs on its own thread and collectives
  really exchange data (used to validate that all distribution strategies
  produce identical training trajectories).

Every collective is also reported to a :class:`CommunicationLog`, which both
tracks transferred bytes per operation type and accumulates simulated
communication time per rank using a :class:`PerformanceModel`.

Both backends additionally expose *nonblocking* collectives
(:meth:`Communicator.iallreduce_average` / :meth:`Communicator.ibroadcast`)
returning :class:`WorkHandle` objects with ``wait()`` / ``is_done()``; the
:mod:`repro.distributed.collectives` engine builds comm/compute overlap and
message fusion on top of them.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .cost_model import PerformanceModel

__all__ = [
    "CommEvent",
    "CommunicationLog",
    "Communicator",
    "SingleProcessCommunicator",
    "WorkHandle",
    "WorkHandleError",
    "CompletedWork",
]


class WorkHandleError(RuntimeError):
    """Misuse of a :class:`WorkHandle` (e.g. result read before ``finish()``)."""


class WorkHandle:
    """Handle onto an in-flight nonblocking collective.

    ``wait()`` blocks until the collective completes and returns the result
    array; ``is_done()`` polls without blocking.  ``wait()`` may be called
    multiple times (subsequent calls return the cached result), and
    ``finish()`` is the explicit idempotent alias for it.  Reading
    :attr:`result` before the handle is finished raises
    :class:`WorkHandleError` — the collective still owns the buffer.
    """

    def wait(self) -> np.ndarray:  # pragma: no cover - abstract
        raise NotImplementedError

    def is_done(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError

    def finish(self) -> np.ndarray:
        """Complete the collective; idempotent (repeat calls return the cache)."""
        return self.wait()

    @property
    def finished(self) -> bool:
        """Whether the result is locally available (never blocks)."""
        return self.is_done()

    @property
    def result(self) -> np.ndarray:
        raise WorkHandleError(
            "WorkHandle.result accessed before finish()/wait(); the collective "
            "may still be in flight"
        )


class CompletedWork(WorkHandle):
    """An already-finished collective (used by synchronous fallbacks)."""

    def __init__(self, result: np.ndarray) -> None:
        self._result = result

    def wait(self) -> np.ndarray:
        return self._result

    def is_done(self) -> bool:
        return True

    @property
    def result(self) -> np.ndarray:
        return self._result


@dataclass
class CommEvent:
    """One collective operation observed by the communication log."""

    op: str
    nbytes: int
    group_size: int
    ranks: Tuple[int, ...]
    simulated_time: float
    fused_count: int = 1  # logical tensors coalesced into this message


class CommunicationLog:
    """Aggregates communication volume and simulated time per rank."""

    def __init__(self, world_size: int, cost_model: Optional[PerformanceModel] = None) -> None:
        self.world_size = world_size
        self.cost_model = cost_model
        self.events: List[CommEvent] = []
        self.comm_time = np.zeros(world_size, dtype=np.float64)
        self.compute_time = np.zeros(world_size, dtype=np.float64)
        self.bytes_by_op: Dict[str, int] = {}
        self.messages_by_op: Dict[str, int] = {}
        self.tensors_by_op: Dict[str, int] = {}
        self._lock = threading.Lock()

    def record_collective(self, op: str, nbytes: int, ranks: Sequence[int], fused_count: int = 1) -> float:
        """Record a collective among ``ranks``; returns the simulated time charged.

        ``fused_count`` is the number of logical tensors coalesced into this
        one message: a fused bucket of 10 layer factors is *one* message (one
        latency term in the cost model) carrying 10 tensors, whereas the
        unfused path records 10 messages.  Byte totals are identical either
        way; only the message count (and hence the simulated latency) differs.
        """
        ranks = tuple(ranks)
        duration = 0.0
        if self.cost_model is not None:
            if op == "allreduce":
                duration = self.cost_model.allreduce_time(nbytes, len(ranks))
            elif op == "broadcast":
                duration = self.cost_model.broadcast_time(nbytes, len(ranks))
        with self._lock:
            self.events.append(
                CommEvent(
                    op=op,
                    nbytes=nbytes,
                    group_size=len(ranks),
                    ranks=ranks,
                    simulated_time=duration,
                    fused_count=int(fused_count),
                )
            )
            self.bytes_by_op[op] = self.bytes_by_op.get(op, 0) + int(nbytes)
            self.messages_by_op[op] = self.messages_by_op.get(op, 0) + 1
            self.tensors_by_op[op] = self.tensors_by_op.get(op, 0) + int(fused_count)
            for rank in ranks:
                self.comm_time[rank] += duration
        return duration

    def record_compute(self, rank: int, seconds: float) -> None:
        """Charge simulated local compute time to one rank."""
        with self._lock:
            self.compute_time[rank] += seconds

    def total_bytes(self) -> int:
        return sum(self.bytes_by_op.values())

    def total_messages(self) -> int:
        """Number of collective messages issued (fused buckets count once)."""
        return sum(self.messages_by_op.values())

    def total_tensors(self) -> int:
        """Number of logical tensors moved (each fused bucket contributes its fused_count)."""
        return sum(self.tensors_by_op.values())

    def iteration_time(self) -> float:
        """Simulated makespan: the busiest rank's compute + communication time."""
        return float(np.max(self.comm_time + self.compute_time)) if self.world_size else 0.0

    def reset(self) -> None:
        with self._lock:
            self.events.clear()
            self.bytes_by_op.clear()
            self.messages_by_op.clear()
            self.tensors_by_op.clear()
            self.comm_time[:] = 0.0
            self.compute_time[:] = 0.0


class Communicator:
    """Rank-local interface for collective communication."""

    #: The attached runtime sanitizer, if any (see :mod:`repro.analysis`).
    #: Backends that support sanitization override this with a property.
    sanitizer = None

    @property
    def rank(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    @property
    def world_size(self) -> int:  # pragma: no cover - abstract
        raise NotImplementedError

    def allreduce_average(self, array: np.ndarray, group: Optional[Sequence[int]] = None) -> np.ndarray:
        raise NotImplementedError

    def broadcast(self, array: Optional[np.ndarray], src: int, group: Optional[Sequence[int]] = None) -> np.ndarray:
        raise NotImplementedError

    def barrier(self) -> None:
        raise NotImplementedError

    # ------------------------------------------------- nonblocking collectives
    # Backends with true asynchrony override these; the defaults execute the
    # blocking collective eagerly and hand back an already-completed handle,
    # so engine code written against handles works on any Communicator.
    # Caveat: the fallbacks cannot thread fused_count into a backend's own
    # record_collective call, so a sync-only backend that logs will count a
    # fused bucket as one tensor; override these to report fusion exactly.
    def iallreduce_average(
        self, array: np.ndarray, group: Optional[Sequence[int]] = None, fused_count: int = 1
    ) -> WorkHandle:
        """Nonblocking allreduce-average; returns a :class:`WorkHandle`."""
        return CompletedWork(self.allreduce_average(array, group=group))

    def ibroadcast(
        self,
        array: Optional[np.ndarray],
        src: int,
        group: Optional[Sequence[int]] = None,
        fused_count: int = 1,
    ) -> WorkHandle:
        """Nonblocking broadcast; returns a :class:`WorkHandle`."""
        return CompletedWork(self.broadcast(array, src=src, group=group))


class SingleProcessCommunicator(Communicator):
    """No-op communicator for single-process training (world size 1)."""

    def __init__(self, log: Optional[CommunicationLog] = None) -> None:
        self.log = log if log is not None else CommunicationLog(world_size=1)

    @property
    def rank(self) -> int:
        return 0

    @property
    def world_size(self) -> int:
        return 1

    def allreduce_average(self, array: np.ndarray, group: Optional[Sequence[int]] = None) -> np.ndarray:
        return array

    def broadcast(self, array: Optional[np.ndarray], src: int, group: Optional[Sequence[int]] = None) -> np.ndarray:
        if array is None:
            raise ValueError("broadcast source value must be provided on the source rank")
        return array

    def barrier(self) -> None:
        return None
