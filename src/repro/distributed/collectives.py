"""Asynchronous bucketed collective engine (comm/compute overlap).

The paper's scaling argument (sections 3.1 and 5.4) is that distributing
K-FAC's *communication* well matters as much as distributing its compute:
hundreds of small per-layer collectives pay a per-message latency ``α`` each,
and issuing them synchronously serialises them behind one another and behind
local compute.  This module is the communication engine that removes both
costs while keeping numerics bitwise identical to the synchronous path:

``BucketManager``
    Coalesces many small same-dtype tensors into flat *fused buffers* capped
    at ``bucket_cap_mb`` (the ``torch.distributed`` DDP bucketing idea).  A
    fused bucket is one collective message — one ``α`` latency term instead
    of one per tensor — carrying exactly the same bytes.  Fusion order is
    the deterministic insertion order of the tensors, so every rank packs and
    unpacks identically and element values never depend on bucket boundaries
    (allreduce-average and broadcast are both elementwise).

``OverlapScheduler``
    Executes a *schedule* of logical collectives (:class:`BroadcastSpec` /
    :class:`AllreduceSpec`) through the bucket manager and the nonblocking
    ``Communicator.iallreduce_average`` / ``Communicator.ibroadcast``
    primitives: all buckets are posted back-to-back (so they are in flight
    concurrently and pipeline against whatever the caller computes next) and
    awaited in issue order, unpacking result views into per-tensor callbacks
    on completion.  Specs whose group does not contain the local rank are
    skipped, so one globally-deterministic schedule serves every rank of an
    SPMD program — exactly how K-FAC's per-layer plans are already built.

The K-FAC preconditioner drives this engine for its factor allreduces, eigen
broadcasts and preconditioned-gradient broadcasts when
``KFACConfig.comm_overlap`` is enabled (``bucket_cap_mb`` tunes the fusion
granularity), and :func:`repro.distributed.ddp.allreduce_gradients` uses the
same bucketing for data-parallel gradient averaging.  The synchronous
per-tensor path remains the default and the two produce bitwise-identical
training trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..observability import NULL_TRACER
from .backend import Communicator, WorkHandle

__all__ = [
    "BucketEntry",
    "TensorBucket",
    "BucketManager",
    "BroadcastSpec",
    "AllreduceSpec",
    "GradientBucketSpec",
    "OverlapScheduler",
]


@dataclass(frozen=True)
class BucketEntry:
    """One logical tensor's slice inside a fused bucket."""

    key: str
    shape: Tuple[int, ...]
    offset: int  # element offset into the flat bucket buffer

    @property
    def size(self) -> int:
        size = 1
        for dim in self.shape:
            size *= int(dim)
        return size


class TensorBucket:
    """A flat fused buffer holding several same-dtype tensors.

    The entry order (and therefore the packed layout) is the insertion order,
    which callers must keep deterministic across ranks.
    """

    def __init__(self, dtype: np.dtype) -> None:
        self.dtype = np.dtype(dtype)
        self.entries: List[BucketEntry] = []
        self._size = 0

    def add(self, key: str, shape: Tuple[int, ...]) -> BucketEntry:
        entry = BucketEntry(key=key, shape=tuple(int(d) for d in shape), offset=self._size)
        self.entries.append(entry)
        self._size += entry.size
        return entry

    def __len__(self) -> int:
        return len(self.entries)

    @property
    def size(self) -> int:
        """Total elements in the fused buffer."""
        return self._size

    @property
    def nbytes(self) -> int:
        return self._size * self.dtype.itemsize

    def pack(self, arrays: Dict[str, np.ndarray]) -> np.ndarray:
        """Copy the member tensors into one flat buffer in entry order."""
        flat = np.empty(self._size, dtype=self.dtype)
        for entry in self.entries:
            array = arrays[entry.key]
            if array.size != entry.size:
                raise ValueError(
                    f"bucket entry {entry.key!r} expects {entry.size} elements, got {array.size}"
                )
            flat[entry.offset : entry.offset + entry.size] = np.asarray(array, dtype=self.dtype).reshape(-1)
        return flat

    def unpack(self, flat: np.ndarray) -> Dict[str, np.ndarray]:
        """Split a flat result buffer back into per-tensor arrays (views reshaped)."""
        if flat.size != self._size:
            raise ValueError(f"bucket expects {self._size} elements, got {flat.size}")
        out: Dict[str, np.ndarray] = {}
        for entry in self.entries:
            out[entry.key] = flat[entry.offset : entry.offset + entry.size].reshape(entry.shape)
        return out


class BucketManager:
    """Builds deterministic fused buckets under a size cap.

    Tensors are grouped by dtype (mixed-dtype fusion would silently upcast)
    and assigned to buckets greedily in insertion order; a bucket is closed
    when adding the next tensor would exceed ``bucket_cap_mb``.  A single
    tensor larger than the cap gets a bucket of its own — it is never split,
    matching DDP's gradient-bucket semantics.
    """

    def __init__(self, bucket_cap_mb: float = 25.0) -> None:
        if bucket_cap_mb <= 0:
            raise ValueError("bucket_cap_mb must be positive")
        self.bucket_cap_mb = float(bucket_cap_mb)
        self.cap_bytes = int(self.bucket_cap_mb * 1024 * 1024)

    def build(self, specs: Sequence[Tuple[str, Tuple[int, ...], np.dtype]]) -> List[TensorBucket]:
        """Partition ``(key, shape, dtype)`` specs into capped same-dtype buckets."""
        buckets: List[TensorBucket] = []
        open_buckets: Dict[np.dtype, TensorBucket] = {}
        for key, shape, dtype in specs:
            dtype = np.dtype(dtype)
            size = 1
            for dim in shape:
                size *= int(dim)
            nbytes = size * dtype.itemsize
            bucket = open_buckets.get(dtype)
            if bucket is not None and bucket.nbytes + nbytes > self.cap_bytes and len(bucket) > 0:
                bucket = None  # close the full bucket; keep its position in `buckets`
            if bucket is None:
                bucket = TensorBucket(dtype)
                buckets.append(bucket)
                open_buckets[dtype] = bucket
            bucket.add(key, shape)
        return [bucket for bucket in buckets if len(bucket) > 0]


@dataclass
class BroadcastSpec:
    """One logical tensor to broadcast from ``src`` within ``group``.

    Every rank of the group constructs the same spec (same key, shape, dtype
    — the metadata needed to unpack the fused buffer); only the source rank
    supplies ``payload``.  ``on_complete`` receives the received array.
    """

    key: str
    src: int
    group: Optional[Tuple[int, ...]]  # None = the whole world
    shape: Tuple[int, ...]
    dtype: np.dtype
    payload: Optional[np.ndarray] = None
    on_complete: Optional[Callable[[np.ndarray], None]] = None


@dataclass
class AllreduceSpec:
    """One logical tensor to allreduce-average within ``group``."""

    key: str
    payload: np.ndarray
    group: Optional[Tuple[int, ...]] = None  # None = the whole world
    on_complete: Optional[Callable[[np.ndarray], None]] = None


@dataclass
class GradientBucketSpec:
    """One deferred allreduce-average a gradient-pipeline subscriber registers.

    Unlike :class:`AllreduceSpec`, the payload is a *callable* evaluated when
    the spec's bucket is posted (mid-backward, once every gating event has
    fired), and readiness is event-driven: the spec becomes ready when the
    gradients of all ``params`` have been finalized by the autograd tape
    (grad-ready hooks) and the full backward hooks of all ``modules`` have
    fired.  ``shape``/``dtype`` describe the payload for deterministic bucket
    planning — every rank must register identical specs in identical order.
    """

    key: str
    shape: Tuple[int, ...]
    dtype: np.dtype
    payload: Callable[[], np.ndarray]
    on_complete: Callable[[np.ndarray], None]
    params: Tuple = ()  # Parameters whose grad-ready events gate this spec
    modules: Tuple = ()  # Modules whose full-backward events gate this spec
    #: Consulted at flush() for specs whose gates never fired during the
    #: armed backward (e.g. a branch skipped by the final micro-batch): if it
    #: returns True the payload is valid and the spec is posted anyway; if
    #: None or False the spec is dropped.  Must be a deterministic function
    #: of training state (identical on every rank).
    flush_ready: Optional[Callable[[], bool]] = None


class OverlapScheduler:
    """Executes fused, pipelined collective schedules over a :class:`Communicator`.

    All buckets of a schedule are posted through the nonblocking primitives
    before any is awaited, so independent buckets (different groups, or
    successive buckets of one group) are in flight concurrently; results are
    awaited in issue order and dispatched to the per-tensor callbacks.

    Two driving styles are supported:

    * ``run_broadcasts`` / ``run_allreduces`` — post a whole schedule, then
      drain it (the ``KFAC.step()`` pattern);
    * ``post_broadcasts`` / ``post_allreduces`` followed by a later
      :meth:`drain` — incremental posting, used by the
      :class:`~repro.training.pipeline.GradientPipeline` to launch buckets
      while the backward pass is still producing gradients.

    The scheduler is not reentrant: :meth:`drain` completes *everything*
    posted so far, in posting order.
    """

    def __init__(self, comm: Communicator, bucket_cap_mb: float = 25.0, tracer=None) -> None:
        self.comm = comm
        self.buckets = BucketManager(bucket_cap_mb)
        # Per-rank tracer: every posted bucket records a post->finish span
        # (category "comm"), the raw material for measured-overlap reporting.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        # Runtime sanitizer (REPRO_SANITIZE=1): posted bucket buffers are
        # frozen + fingerprinted until their handle is awaited, so a mutation
        # or read of an in-flight buffer raises instead of corrupting comm.
        self.sanitizer = getattr(comm, "sanitizer", None)
        self._in_flight: List[Tuple[WorkHandle, TensorBucket, Dict[str, object], Tuple[str, int, float], Optional[int]]] = []

    def _stamp(self, op: str, bucket: TensorBucket, flat: Optional[np.ndarray]) -> Optional[int]:
        """Register a posted flat buffer with the buffer-access checker."""
        if self.sanitizer is None or flat is None:
            return None
        self.sanitizer.attach_tracer(self.comm.rank, self.tracer)
        key = f"rank{self.comm.rank}/{op}:{bucket.entries[0].key}+{len(bucket) - 1}"
        return self.sanitizer.buffers.stamp(key, flat, tracer=self.tracer)

    # ------------------------------------------------------------- internals
    def _group_members(self, group: Optional[Tuple[int, ...]]) -> Tuple[int, ...]:
        if group is None:
            return tuple(range(self.comm.world_size))
        return tuple(sorted(set(int(r) for r in group)))

    # ------------------------------------------------------------ broadcasts
    def post_broadcasts(self, specs: Sequence[BroadcastSpec]) -> None:
        """Fuse and post a broadcast schedule without awaiting it.

        Specs are grouped by ``(src, group)`` in first-appearance order and
        bucketized per channel; the local rank participates only in channels
        whose group contains it, so the same globally-ordered schedule can be
        passed on every rank.  Results arrive at :meth:`drain`.
        """
        rank = self.comm.rank
        channels: Dict[Tuple, List[BroadcastSpec]] = {}
        order: List[Tuple] = []
        for spec in specs:
            members = self._group_members(spec.group)
            if rank not in members:
                continue
            channel = (int(spec.src), members)
            if channel not in channels:
                channels[channel] = []
                order.append(channel)
            channels[channel].append(spec)

        for channel in order:
            src, members = channel
            channel_specs = channels[channel]
            spec_by_key = {spec.key: spec for spec in channel_specs}
            if len(spec_by_key) != len(channel_specs):
                raise ValueError(
                    f"duplicate broadcast keys in channel (src={src}, group={members}); "
                    "every spec of a channel needs a unique key"
                )
            for bucket in self.buckets.build([(s.key, s.shape, s.dtype) for s in channel_specs]):
                if rank == src:
                    payloads = {}
                    for entry in bucket.entries:
                        payload = spec_by_key[entry.key].payload
                        if payload is None:
                            raise ValueError(f"broadcast source rank {src} has no payload for {entry.key!r}")
                        payloads[entry.key] = payload
                    flat = bucket.pack(payloads)
                else:
                    flat = None
                handle = self.comm.ibroadcast(
                    flat, src=src, group=None if len(members) == self.comm.world_size else members,
                    fused_count=len(bucket),
                )
                token = self._stamp("broadcast", bucket, flat)
                posted = ("broadcast", len(members), self.tracer.now() if self.tracer.enabled else 0.0)
                self._in_flight.append((handle, bucket, spec_by_key, posted, token))

    def run_broadcasts(self, specs: Sequence[BroadcastSpec]) -> None:
        """Fuse and execute a broadcast schedule (post + drain)."""
        self.post_broadcasts(specs)
        self.drain()

    # ------------------------------------------------------------ allreduces
    def post_allreduces(self, specs: Sequence[AllreduceSpec]) -> None:
        """Fuse and post an allreduce-average schedule without awaiting it."""
        rank = self.comm.rank
        channels: Dict[Tuple[int, ...], List[AllreduceSpec]] = {}
        order: List[Tuple[int, ...]] = []
        for spec in specs:
            members = self._group_members(spec.group)
            if rank not in members:
                continue
            if members not in channels:
                channels[members] = []
                order.append(members)
            channels[members].append(spec)

        for members in order:
            channel_specs = channels[members]
            spec_by_key = {spec.key: spec for spec in channel_specs}
            if len(spec_by_key) != len(channel_specs):
                raise ValueError(
                    f"duplicate allreduce keys in group {members}; "
                    "every spec of a channel needs a unique key"
                )
            for bucket in self.buckets.build(
                [(s.key, s.payload.shape, s.payload.dtype) for s in channel_specs]
            ):
                flat = bucket.pack({key: spec_by_key[key].payload for key in (e.key for e in bucket.entries)})
                handle = self.comm.iallreduce_average(
                    flat, group=None if len(members) == self.comm.world_size else members,
                    fused_count=len(bucket),
                )
                token = self._stamp("allreduce", bucket, flat)
                posted = ("allreduce", len(members), self.tracer.now() if self.tracer.enabled else 0.0)
                self._in_flight.append((handle, bucket, spec_by_key, posted, token))

    def run_allreduces(self, specs: Sequence[AllreduceSpec]) -> None:
        """Fuse and execute an allreduce-average schedule (post + drain)."""
        self.post_allreduces(specs)
        self.drain()

    # ----------------------------------------------------------------- drain
    def drain(self) -> None:
        """Await every posted bucket in posting order and dispatch callbacks."""
        in_flight, self._in_flight = self._in_flight, []
        for handle, bucket, spec_by_key, posted, token in in_flight:
            result = bucket.unpack(handle.wait())
            if token is not None:
                self.sanitizer.buffers.release(token)
            self._record_comm_span(bucket, posted)
            for entry in bucket.entries:
                spec = spec_by_key[entry.key]
                if spec.on_complete is not None:
                    spec.on_complete(result[entry.key])

    def discard(self) -> None:
        """Await posted buckets but drop their results without any callbacks.

        The error-recovery counterpart of :meth:`drain`: a collective cannot
        be cancelled once posted, so this waits the in-flight work out (in an
        SPMD program every rank must discard symmetrically) while guaranteeing
        no stale result is installed.
        """
        in_flight, self._in_flight = self._in_flight, []
        for handle, bucket, _spec_by_key, posted, token in in_flight:
            handle.wait()
            if token is not None:
                self.sanitizer.buffers.release(token)
            self._record_comm_span(bucket, posted, discarded=True)

    def _record_comm_span(self, bucket: TensorBucket, posted: Tuple[str, int, float], discarded: bool = False) -> None:
        """Record the post->finish window of one fused bucket on the tracer.

        The interval covers the collective's entire in-flight life on this
        rank — from the nonblocking post (possibly mid-backward) to the
        moment its result was awaited — which is exactly the window measured
        overlap reporting intersects with the backward spans.
        """
        if not self.tracer.enabled:
            return
        op, group_size, t_post = posted
        self.tracer.record_span(
            f"comm/{op}",
            start=t_post,
            end=self.tracer.now(),
            category="comm",
            lane="comm",
            op=op,
            nbytes=bucket.nbytes,
            fused_count=len(bucket),
            group_size=group_size,
            discarded=discarded,
        )
