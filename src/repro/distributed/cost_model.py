"""Analytic performance model for distributed training.

The paper's iteration-time and scaling studies (Figures 6, 7, 8) were run on
64–448 V100s and up to 192 A100s, which are not available here.  This module
provides an alpha-beta communication model plus simple roofline-style compute
estimates so the *shape* of those results can be regenerated from the real
layer shapes of each model:

* **allreduce** — ring algorithm: ``2 (p-1)/p * bytes / bw + 2 (p-1) * alpha``,
* **broadcast** — minimum-spanning-tree algorithm: ``ceil(log2 p) * (alpha +
  bytes / bw)``, the ``O(log p)`` complexity used in the paper's section 3.1
  analysis,
* **compute** — FLOP counts divided by an effective throughput; eigen
  decompositions get a much lower efficiency factor than dense matrix
  multiplication, matching their poor GPU utilisation.

Constants are calibrated to the published hardware (V100 + EDR InfiniBand,
DGX-A100 + NVLink/HDR) and documented per field; absolute times are only
indicative but relative behaviour across ``grad_worker_frac`` values, models
and world sizes follows the same formulae the paper reasons with.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

__all__ = [
    "DeviceSpec",
    "NetworkSpec",
    "PerformanceModel",
    "amortized_update_time",
    "choose_bucket_cap",
    "V100",
    "A100",
    "EDR_INFINIBAND",
    "DGX_A100_FABRIC",
    "ETHERNET_10G",
]

#: Fraction of an iteration's forward+backward+update compute spent in the
#: backward pass — the window a hook-driven schedule can hide communication
#: behind.  Backward is ~2x forward work (grad w.r.t. inputs and weights), so
#: two thirds of the fwd+bwd budget is the standard engineering estimate.
BACKWARD_COMPUTE_FRACTION = 2.0 / 3.0


def amortized_update_time(duration: float, update_freq: int, update_fraction: float = 1.0) -> float:
    """Per-iteration share of a stage that runs every ``update_freq`` steps.

    ``update_fraction`` scales the base cadence to what was *actually*
    performed — the adaptive scheduler reports performed/expected update
    ratios (``KFAC.scheduler_stats()``), so a layer set that skipped half its
    eigen refreshes charges half the amortised decomposition time.  The
    fixed cadence is ``update_fraction=1.0``; values above 1 model
    drift-triggered refreshes beyond the base schedule.
    """
    return float(duration) * max(float(update_fraction), 0.0) / max(int(update_freq), 1)


@dataclass(frozen=True)
class DeviceSpec:
    """Per-accelerator compute characteristics."""

    name: str
    peak_flops_fp32: float  # dense FP32 FLOP/s
    peak_flops_fp16: float  # dense FP16 (tensor core) FLOP/s
    memory_bytes: int  # device memory capacity

    def peak_flops(self, dtype_bytes: int) -> float:
        return self.peak_flops_fp16 if dtype_bytes <= 2 else self.peak_flops_fp32


@dataclass(frozen=True)
class NetworkSpec:
    """Point-to-point interconnect characteristics (per rank pair)."""

    name: str
    latency: float  # seconds per message
    bandwidth: float  # bytes per second


#: 16 GB NVIDIA Tesla V100 (Frontera GPU subsystem).
V100 = DeviceSpec(name="V100", peak_flops_fp32=15.7e12, peak_flops_fp16=125e12, memory_bytes=16 * 1024 ** 3)

#: 40 GB NVIDIA A100 (ThetaGPU DGX-A100 nodes).
A100 = DeviceSpec(name="A100", peak_flops_fp32=19.5e12, peak_flops_fp16=312e12, memory_bytes=40 * 1024 ** 3)

#: InfiniBand EDR (100 Gb/s) with NCCL-like software latency.
EDR_INFINIBAND = NetworkSpec(name="EDR-IB", latency=20e-6, bandwidth=12.5e9)

#: DGX-A100 mixed NVLink/HDR fabric (effective inter-node bandwidth).
DGX_A100_FABRIC = NetworkSpec(name="DGX-A100", latency=10e-6, bandwidth=25e9)

#: Commodity 10 GbE, the "high communication cost" environment of section 7.
ETHERNET_10G = NetworkSpec(name="10GbE", latency=50e-6, bandwidth=1.25e9)


class PerformanceModel:
    """Estimates communication and compute times for the simulated cluster."""

    def __init__(
        self,
        device: DeviceSpec = V100,
        network: NetworkSpec = EDR_INFINIBAND,
        compute_efficiency: float = 0.45,
        eigen_efficiency: float = 0.05,
    ) -> None:
        if not 0 < compute_efficiency <= 1 or not 0 < eigen_efficiency <= 1:
            raise ValueError("efficiencies must be in (0, 1]")
        self.device = device
        self.network = network
        self.compute_efficiency = float(compute_efficiency)
        self.eigen_efficiency = float(eigen_efficiency)

    # -------------------------------------------------------- communication
    def allreduce_time(self, nbytes: float, world_size: int) -> float:
        """Ring allreduce time across ``world_size`` ranks."""
        if world_size <= 1 or nbytes <= 0:
            return 0.0
        p = world_size
        bandwidth_term = 2.0 * (p - 1) / p * nbytes / self.network.bandwidth
        latency_term = 2.0 * (p - 1) * self.network.latency
        return bandwidth_term + latency_term

    def broadcast_time(self, nbytes: float, group_size: int) -> float:
        """Minimum-spanning-tree broadcast time within a group (O(log p), section 3.1)."""
        if group_size <= 1 or nbytes <= 0:
            return 0.0
        hops = math.ceil(math.log2(group_size))
        return hops * (self.network.latency + nbytes / self.network.bandwidth)

    # ------------------------------------------------- fused-message variants
    # Fusing k tensors into one bucket moves the same bytes but pays the
    # per-message latency (alpha) terms once per *bucket* instead of once per
    # tensor; the bandwidth term is unchanged.  These helpers price a volume
    # split across `num_messages` messages, so `num_messages=1` is a single
    # fused buffer and `num_messages=k` is the unfused per-tensor schedule.
    def fused_allreduce_time(self, nbytes: float, world_size: int, num_messages: int = 1) -> float:
        """Ring-allreduce time for ``nbytes`` split across ``num_messages`` messages."""
        if world_size <= 1 or nbytes <= 0 or num_messages < 1:
            return 0.0
        extra_latency = (num_messages - 1) * 2.0 * (world_size - 1) * self.network.latency
        return self.allreduce_time(nbytes, world_size) + extra_latency

    def fused_broadcast_time(self, nbytes: float, group_size: int, num_messages: int = 1) -> float:
        """MST-broadcast time for ``nbytes`` split across ``num_messages`` messages."""
        if group_size <= 1 or nbytes <= 0 or num_messages < 1:
            return 0.0
        hops = math.ceil(math.log2(group_size))
        return self.broadcast_time(nbytes, group_size) + (num_messages - 1) * hops * self.network.latency

    @staticmethod
    def exposed_comm_time(comm_time: float, overlap_window: float) -> float:
        """Communication time left on the critical path after hiding it behind compute.

        ``overlap_window`` is the concurrent local compute (e.g. the remaining
        backward pass) that an asynchronous schedule can overlap with; the
        synchronous path exposes the full ``comm_time``.
        """
        return max(0.0, comm_time - max(0.0, overlap_window))

    @staticmethod
    def backward_window(iteration_compute_time: float) -> float:
        """Backward-pass compute available to hide hook-posted communication behind.

        ``iteration_compute_time`` is the per-rank forward+backward+update
        time; the hook-driven gradient pipeline posts its buckets while the
        backward two-thirds of it is still executing.
        """
        return max(0.0, float(iteration_compute_time)) * BACKWARD_COMPUTE_FRACTION

    # --------------------------------------------------------------- compute
    def compute_time(self, flops: float, dtype_bytes: int = 4) -> float:
        """Time for dense, well-utilised compute (matmuls, factor products)."""
        if flops <= 0:
            return 0.0
        return flops / (self.device.peak_flops(dtype_bytes) * self.compute_efficiency)

    def eigen_decomposition_time(self, n: int, dtype_bytes: int = 4) -> float:
        """Time to eigen-decompose an ``n x n`` symmetric matrix.

        Eigen decomposition is always executed in at least FP32 (section 3.3),
        so the FP32 peak is used regardless of the storage dtype, with a low
        efficiency factor reflecting the algorithm's poor accelerator
        utilisation (the paper's O(N^3) cost proxy, section 3.2).
        """
        if n <= 0:
            return 0.0
        flops = 9.0 * float(n) ** 3  # reduction to tridiagonal + QR iterations
        return flops / (self.device.peak_flops_fp32 * self.eigen_efficiency)

    def diagonal_eigen_time(self, n: int, dtype_bytes: int = 4) -> float:
        """Time to "decompose" a diagonal factor of dimension ``n``.

        A diagonal matrix is its own spectrum (identity eigenbasis), so the
        decomposition degenerates to an O(n) clamp over the stored vector.
        Priced at the same low eigen efficiency as the dense path so the two
        estimates stay comparable.
        """
        if n <= 0:
            return 0.0
        return float(n) / (self.device.peak_flops_fp32 * self.eigen_efficiency)

    def block_eigen_time(self, num_blocks: int, block_size: int, dtype_bytes: int = 4) -> float:
        """Time to decompose a block-diagonal factor: ``num_blocks`` independent problems."""
        if num_blocks <= 0 or block_size <= 0:
            return 0.0
        return float(num_blocks) * self.eigen_decomposition_time(block_size, dtype_bytes)

    def matmul_flops(self, m: int, n: int, k: int) -> float:
        """FLOPs of an ``(m x k) @ (k x n)`` matrix multiplication."""
        return 2.0 * float(m) * float(n) * float(k)


# ---------------------------------------------------------------------------
# Adaptive bucket sizing
# ---------------------------------------------------------------------------

#: Candidate fused-buffer caps (MB) evaluated by :func:`choose_bucket_cap`.
DEFAULT_BUCKET_CAP_CANDIDATES_MB: Tuple[float, ...] = (1.0, 2.0, 4.0, 8.0, 16.0, 25.0, 50.0, 100.0)


def _bucket_sizes(tensor_nbytes: Sequence[int], cap_mb: float) -> list:
    """Per-bucket byte sizes the engine would build for these tensors.

    Delegates to the engine's own :class:`BucketManager` (one byte-sized
    tensor per input) so the modeled message counts cannot drift from the
    packing the scheduler actually performs.
    """
    import numpy as np

    from .collectives import BucketManager  # function-local: backend -> cost_model cycle

    specs = [(str(i), (int(nbytes),), np.dtype(np.uint8)) for i, nbytes in enumerate(tensor_nbytes)]
    return [bucket.nbytes for bucket in BucketManager(cap_mb).build(specs)]


def choose_bucket_cap(
    network: NetworkSpec,
    tensor_nbytes: Sequence[int],
    world_size: int = 8,
    candidates_mb: Sequence[float] = DEFAULT_BUCKET_CAP_CANDIDATES_MB,
) -> float:
    """Pick ``bucket_cap_mb`` for a tensor population from the alpha-beta model.

    A hook-driven schedule posts each fused bucket as soon as its tensors are
    ready, so all buckets except the last overlap remaining backward compute;
    the exposed cost of a candidate cap is modeled as

    * one ring-allreduce latency term (``2 (p-1) alpha``) per bucket — small
      caps issue many messages and pay alpha repeatedly, while
    * the *last* bucket's full transfer (latency + ring bandwidth term)
      cannot hide behind anything — large caps leave a long serial tail.

    Minimizing the sum trades message count against pipelining granularity,
    exactly the ``bucket_cap_mb`` knob of DDP; ties prefer the smaller cap
    (finer pipelining at equal modeled cost).  The per-bucket packing follows
    the same greedy closing rule as
    :class:`~repro.distributed.collectives.BucketManager`, so the modeled
    message counts match what the engine would issue.
    """
    tensor_nbytes = [int(b) for b in tensor_nbytes if int(b) > 0]
    if not tensor_nbytes:
        return float(candidates_mb[0])
    if world_size < 2:
        world_size = 2  # a single rank sends nothing; size the cap for the smallest real world
    alpha_term = 2.0 * (world_size - 1) * network.latency
    beta_per_byte = 2.0 * (world_size - 1) / world_size / network.bandwidth
    best_cap, best_cost = None, None
    for cap_mb in candidates_mb:
        sizes = _bucket_sizes(tensor_nbytes, float(cap_mb))
        cost = len(sizes) * alpha_term + sizes[-1] * beta_per_byte + alpha_term
        if best_cost is None or cost < best_cost:
            best_cap, best_cost = float(cap_mb), cost
    return best_cap
