"""Distributed sampling: shard each global batch across ranks."""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

__all__ = ["DistributedSampler", "shard_batch"]


def shard_batch(batch_size: int, rank: int, world_size: int) -> slice:
    """Contiguous slice of a global batch owned by ``rank``.

    The global batch is split as evenly as possible; earlier ranks receive
    the remainder (matching ``torch.utils.data.distributed.DistributedSampler``
    behaviour of never dropping samples within a batch).
    """
    if world_size < 1 or not 0 <= rank < world_size:
        raise ValueError("invalid rank/world_size")
    base = batch_size // world_size
    remainder = batch_size % world_size
    start = rank * base + min(rank, remainder)
    size = base + (1 if rank < remainder else 0)
    return slice(start, start + size)


class DistributedSampler:
    """Deterministic per-epoch shuffling with per-rank sharding of sample indices."""

    def __init__(self, num_samples: int, rank: int = 0, world_size: int = 1, shuffle: bool = True, seed: int = 0) -> None:
        if world_size < 1 or not 0 <= rank < world_size:
            raise ValueError("invalid rank/world_size")
        self.num_samples = int(num_samples)
        self.rank = rank
        self.world_size = world_size
        self.shuffle = shuffle
        self.seed = seed
        self.epoch = 0

    def set_epoch(self, epoch: int) -> None:
        """Change the shuffling seed so every epoch uses a different permutation."""
        self.epoch = int(epoch)

    def __len__(self) -> int:
        return (self.num_samples + self.world_size - 1) // self.world_size

    def indices(self) -> np.ndarray:
        order = np.arange(self.num_samples)
        if self.shuffle:
            rng = np.random.default_rng(self.seed + self.epoch)
            rng.shuffle(order)
        # Pad so that every rank sees the same number of samples.
        per_rank = len(self)
        total = per_rank * self.world_size
        if total > self.num_samples:
            order = np.concatenate([order, order[: total - self.num_samples]])
        return order[self.rank : total : self.world_size]

    def __iter__(self) -> Iterator[int]:
        return iter(self.indices().tolist())
