"""In-process multi-rank backend: one thread per rank, real data exchange.

Each rank runs the same SPMD program on its own thread (exactly as each GPU
process would with ``torch.distributed``).  Collectives rendezvous through a
shared slot table keyed by ``(group, per-group sequence number)``: all ranks
in a group issue their collectives in the same order, so matching calls find
each other without any global coordinator.  The backend moves real NumPy data
(so correctness properties such as "all replicas stay bit-identical" can be
tested) and reports every collective to the :class:`CommunicationLog` so the
simulated cluster time can be accounted with a :class:`PerformanceModel`.
"""

from __future__ import annotations

import threading
import warnings
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.sanitizer import CollectiveSanitizer, SanitizerError, capture_call_site, sanitize_enabled
from .backend import CommunicationLog, Communicator, CompletedWork, WorkHandle, WorkHandleError
from .cost_model import PerformanceModel

__all__ = ["ThreadedWorld", "ThreadedCommunicator", "ThreadedWork", "run_spmd"]


class _CollectiveSlot:
    """Rendezvous point for a single collective operation."""

    def __init__(self, group_size: int) -> None:
        self.group_size = group_size
        self.values: Dict[int, np.ndarray] = {}
        self.result: Optional[np.ndarray] = None
        self.ready = threading.Event()
        self.consumed = 0


class ThreadedWork(WorkHandle):
    """In-flight collective on a :class:`ThreadedWorld`.

    The issuing rank's contribution is already posted to the rendezvous slot,
    so other ranks can make progress while this rank computes; ``wait()``
    blocks only until the remaining ranks arrive.
    """

    def __init__(self, world: "ThreadedWorld", op: str, key: Tuple, rank: int, slot: _CollectiveSlot) -> None:
        self._world = world
        self._op = op
        self._key = key
        self._rank = rank
        self._slot = slot
        self._result: Optional[np.ndarray] = None
        self._finished = False
        self._site = capture_call_site() if world.sanitizer is not None else None

    def is_done(self) -> bool:
        return self._finished or self._slot.ready.is_set()

    def wait(self) -> np.ndarray:
        if not self._finished:
            self._result = self._world.finish_collective(self._op, self._key, self._rank, self._slot)
            self._finished = True
        return self._result

    @property
    def finished(self) -> bool:
        return self._finished

    @property
    def result(self) -> np.ndarray:
        if not self._finished:
            raise WorkHandleError(
                f"result of {self._op} posted at {self._site or 'unknown site'} "
                "accessed before finish()/wait(); the collective is still in flight"
            )
        return self._result

    def __del__(self) -> None:
        # Under sanitize mode, a posted-but-never-finished handle is lost
        # communication: the peers' matching calls will block forever.
        try:
            if self._finished:
                return
            sanitizer = getattr(self._world, "sanitizer", None)
            if sanitizer is None:
                return
            sanitizer.on_leaked(self._rank)
            warnings.warn(
                f"WorkHandle for {self._op} (posted at {self._site or 'unknown site'}) "
                "was garbage-collected without finish(); the collective was never "
                "completed on this rank",
                ResourceWarning,
                stacklevel=2,
            )
        except Exception:  # interpreter shutdown: modules may be half-torn-down
            pass


class ThreadedWorld:
    """Shared state for an in-process world of ``world_size`` ranks.

    With ``sanitize=True`` (default: the ``REPRO_SANITIZE`` env toggle) a
    :class:`~repro.analysis.sanitizer.CollectiveSanitizer` is attached:
    every ``post_collective`` is cross-checked against the other ranks'
    schedules, barriers verify per-group collective counts, and a violation
    *poisons* the world — all blocked ranks are woken with the structured
    :class:`~repro.analysis.sanitizer.SanitizerError` instead of deadlocking.
    """

    def __init__(
        self,
        world_size: int,
        cost_model: Optional[PerformanceModel] = None,
        timeout: float = 60.0,
        sanitize: Optional[bool] = None,
    ) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.timeout = timeout
        self.log = CommunicationLog(world_size, cost_model)
        self._lock = threading.Lock()
        self._slots: Dict[Tuple, _CollectiveSlot] = {}
        self._poisoned: Optional[SanitizerError] = None
        if sanitize is None:
            sanitize = sanitize_enabled()
        self.sanitizer: Optional[CollectiveSanitizer] = None
        if sanitize:
            self.sanitizer = CollectiveSanitizer(world_size)
            self.sanitizer.bind_poison(self._poison)
            self._barrier = threading.Barrier(world_size, action=self.sanitizer.barrier_check)
        else:
            self._barrier = threading.Barrier(world_size)

    def _poison(self, error: SanitizerError, abort_barrier: bool = True) -> None:
        """Fail fast on a sanitizer violation: wake every blocked rank.

        Pending rendezvous waiters are released (they re-check ``_poisoned``
        before trusting the slot) and the barrier is broken, so a divergent
        schedule surfaces as a raised error on every rank instead of a
        timeout/deadlock.  ``abort_barrier=False`` is used when the violation
        is raised from inside the barrier action itself (the action holds the
        barrier's internal lock, and raising there already breaks it).
        """
        with self._lock:
            self._poisoned = error
            for slot in self._slots.values():
                slot.ready.set()
        if abort_barrier:
            self._barrier.abort()

    def _check_poisoned(self) -> None:
        if self._poisoned is not None and self.sanitizer is not None:
            raise self.sanitizer.propagated()

    def communicator(self, rank: int) -> "ThreadedCommunicator":
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")
        return ThreadedCommunicator(self, rank)

    # ------------------------------------------------------------- internals
    def _slot(self, key: Tuple, group_size: int) -> _CollectiveSlot:
        with self._lock:
            slot = self._slots.get(key)
            if slot is None:
                slot = _CollectiveSlot(group_size)
                self._slots[key] = slot
            return slot

    def _release(self, key: Tuple, slot: _CollectiveSlot) -> None:
        with self._lock:
            slot.consumed += 1
            if slot.consumed >= slot.group_size:
                self._slots.pop(key, None)

    def post_collective(
        self,
        op: str,
        key: Tuple,
        rank: int,
        group: Tuple[int, ...],
        value: Optional[np.ndarray],
        reducer: Optional[Callable[[List[np.ndarray]], np.ndarray]],
        src: Optional[int] = None,
        fused_count: int = 1,
    ) -> _CollectiveSlot:
        """Post this rank's contribution without blocking; returns the slot.

        The rank whose post completes the group computes the result, records
        the collective in the log (once, tagged with ``fused_count``) and
        releases every waiter.
        """
        if self.sanitizer is not None:
            self._check_poisoned()
            # key = (op, group, per-group seq): the seq pairs this post with
            # the other ranks' matching calls, so divergence is caught here —
            # at post time — rather than as a downstream deadlock.
            self.sanitizer.on_post(
                rank=rank,
                op=op,
                group=group,
                seq=key[-1],
                src=src,
                value=value,
                fused_count=fused_count,
            )
        slot = self._slot(key, len(group))
        is_producer_complete = False
        with self._lock:
            if value is not None:
                slot.values[rank] = value
            if reducer is not None:
                is_producer_complete = len(slot.values) == len(group)
            else:
                is_producer_complete = src in slot.values
            if is_producer_complete and not slot.ready.is_set():
                if reducer is not None:
                    ordered = [slot.values[r] for r in sorted(slot.values)]
                    slot.result = reducer(ordered)
                else:
                    slot.result = slot.values[src]
                nbytes = int(slot.result.nbytes) if isinstance(slot.result, np.ndarray) else 0
                self_log_ranks = group
                slot.ready.set()
                # Record once per collective (by the completing rank).
                self.log.record_collective(op, nbytes, self_log_ranks, fused_count=fused_count)
        return slot

    def finish_collective(self, op: str, key: Tuple, rank: int, slot: _CollectiveSlot) -> np.ndarray:
        """Block until the posted collective completes and return a private copy."""
        completed = slot.ready.wait(self.timeout)
        if self._poisoned is not None:
            self._check_poisoned()
        if not completed:
            if self.sanitizer is not None:
                raise SanitizerError(
                    "collective-timeout",
                    f"collective {op} {key} timed out; some group member never "
                    "posted its matching call",
                    rank=rank,
                    details=self.sanitizer.pending_diagnostics(),
                )
            raise TimeoutError(f"collective {op} {key} timed out on rank {rank}")
        result = slot.result
        self._release(key, slot)
        if self.sanitizer is not None:
            self.sanitizer.on_finish(rank)
        return np.array(result, copy=True)

    def run_collective(
        self,
        op: str,
        key: Tuple,
        rank: int,
        group: Tuple[int, ...],
        value: Optional[np.ndarray],
        reducer: Optional[Callable[[List[np.ndarray]], np.ndarray]],
        src: Optional[int] = None,
        fused_count: int = 1,
    ) -> np.ndarray:
        """Generic rendezvous: post ``value``, wait for the group, return the result."""
        slot = self.post_collective(op, key, rank, group, value, reducer, src=src, fused_count=fused_count)
        return self.finish_collective(op, key, rank, slot)

    def barrier(self) -> None:
        try:
            self._barrier.wait(self.timeout)
        except threading.BrokenBarrierError:
            # Poisoned world or failed barrier_check on another thread: re-raise
            # the structured violation instead of the bare barrier error.
            self._check_poisoned()
            if self.sanitizer is not None and self.sanitizer.violation is not None:
                raise self.sanitizer.propagated() from None
            raise


class ThreadedCommunicator(Communicator):
    """Rank-local handle onto a :class:`ThreadedWorld`."""

    def __init__(self, world: ThreadedWorld, rank: int) -> None:
        self._world = world
        self._rank = rank
        # Per-group sequence counters generate matching keys across ranks.
        self._sequence: Dict[Tuple[int, ...], int] = {}

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def world_size(self) -> int:
        return self._world.world_size

    @property
    def log(self) -> CommunicationLog:
        return self._world.log

    @property
    def sanitizer(self) -> Optional[CollectiveSanitizer]:
        return self._world.sanitizer

    def _next_key(self, group: Tuple[int, ...]) -> Tuple:
        count = self._sequence.get(group, 0)
        self._sequence[group] = count + 1
        return (group, count)

    def _normalize_group(self, group: Optional[Sequence[int]]) -> Tuple[int, ...]:
        if group is None:
            return tuple(range(self.world_size))
        normalized = tuple(sorted(set(int(r) for r in group)))
        if self._rank not in normalized:
            raise ValueError(f"rank {self._rank} is not part of group {normalized}")
        return normalized

    @staticmethod
    def _mean_reducer(values: List[np.ndarray]) -> np.ndarray:
        # Elementwise mean over the rank axis: bitwise-identical whether the
        # tensors are reduced individually or coalesced into a fused buffer.
        return np.mean(np.stack(values, axis=0), axis=0).astype(values[0].dtype)

    def allreduce_average(self, array: np.ndarray, group: Optional[Sequence[int]] = None) -> np.ndarray:
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            return array
        key = ("allreduce",) + self._next_key(group_t)
        result = self._world.run_collective(
            "allreduce",
            key,
            self._rank,
            group_t,
            np.asarray(array),
            reducer=self._mean_reducer,
        )
        return result

    def iallreduce_average(
        self, array: np.ndarray, group: Optional[Sequence[int]] = None, fused_count: int = 1
    ) -> WorkHandle:
        """Post an allreduce-average without waiting for the other ranks."""
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            return CompletedWork(array)
        key = ("allreduce",) + self._next_key(group_t)
        slot = self._world.post_collective(
            "allreduce",
            key,
            self._rank,
            group_t,
            np.asarray(array),
            reducer=self._mean_reducer,
            fused_count=fused_count,
        )
        return ThreadedWork(self._world, "allreduce", key, self._rank, slot)

    def allreduce_sum(self, array: np.ndarray, group: Optional[Sequence[int]] = None) -> np.ndarray:
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            return array
        key = ("allreduce",) + self._next_key(group_t)
        return self._world.run_collective(
            "allreduce",
            key,
            self._rank,
            group_t,
            np.asarray(array),
            reducer=lambda values: np.sum(np.stack(values, axis=0), axis=0).astype(values[0].dtype),
        )

    def broadcast(self, array: Optional[np.ndarray], src: int, group: Optional[Sequence[int]] = None) -> np.ndarray:
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            if array is None:
                raise ValueError("broadcast source value must be provided on the source rank")
            return array
        key = ("broadcast",) + self._next_key(group_t)
        value = np.asarray(array) if (array is not None and self._rank == src) else None
        return self._world.run_collective("broadcast", key, self._rank, group_t, value, reducer=None, src=src)

    def ibroadcast(
        self,
        array: Optional[np.ndarray],
        src: int,
        group: Optional[Sequence[int]] = None,
        fused_count: int = 1,
    ) -> WorkHandle:
        """Post a broadcast without waiting; non-source ranks post an empty contribution."""
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            if array is None:
                raise ValueError("broadcast source value must be provided on the source rank")
            return CompletedWork(array)
        key = ("broadcast",) + self._next_key(group_t)
        value = np.asarray(array) if (array is not None and self._rank == src) else None
        slot = self._world.post_collective(
            "broadcast", key, self._rank, group_t, value, reducer=None, src=src, fused_count=fused_count
        )
        return ThreadedWork(self._world, "broadcast", key, self._rank, slot)

    def barrier(self) -> None:
        self._world.barrier()


def run_spmd(
    world_size: int,
    fn: Callable[[ThreadedCommunicator], object],
    cost_model: Optional[PerformanceModel] = None,
    sanitize: Optional[bool] = None,
) -> List[object]:
    """Run ``fn(comm)`` on every rank of a fresh :class:`ThreadedWorld` and collect results.

    Exceptions raised on any rank are re-raised in the caller after all
    threads have finished (so a failing rank cannot silently hang the test).
    ``sanitize`` forces the collective sanitizer on/off for this world
    (default: the ``REPRO_SANITIZE`` environment toggle).
    """
    world = ThreadedWorld(world_size, cost_model=cost_model, sanitize=sanitize)
    results: List[object] = [None] * world_size
    errors: List[Optional[BaseException]] = [None] * world_size

    def target(rank: int) -> None:
        try:
            results[rank] = fn(world.communicator(rank))
        except BaseException as exc:  # noqa: BLE001 - propagate to the main thread
            errors[rank] = exc

    threads = [threading.Thread(target=target, args=(rank,), daemon=True) for rank in range(world_size)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for rank, error in enumerate(errors):
        if error is not None:
            raise RuntimeError(f"rank {rank} failed") from error
    return results
