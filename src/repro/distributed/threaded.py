"""In-process multi-rank backend: one thread per rank, real data exchange.

Each rank runs the same SPMD program on its own thread (exactly as each GPU
process would with ``torch.distributed``).  Collectives rendezvous through a
shared slot table keyed by ``(group, per-group sequence number)``: all ranks
in a group issue their collectives in the same order, so matching calls find
each other without any global coordinator.  The backend moves real NumPy data
(so correctness properties such as "all replicas stay bit-identical" can be
tested) and reports every collective to the :class:`CommunicationLog` so the
simulated cluster time can be accounted with a :class:`PerformanceModel`.
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .backend import CommunicationLog, Communicator, CompletedWork, WorkHandle
from .cost_model import PerformanceModel

__all__ = ["ThreadedWorld", "ThreadedCommunicator", "ThreadedWork", "run_spmd"]


class _CollectiveSlot:
    """Rendezvous point for a single collective operation."""

    def __init__(self, group_size: int) -> None:
        self.group_size = group_size
        self.values: Dict[int, np.ndarray] = {}
        self.result: Optional[np.ndarray] = None
        self.ready = threading.Event()
        self.consumed = 0


class ThreadedWork(WorkHandle):
    """In-flight collective on a :class:`ThreadedWorld`.

    The issuing rank's contribution is already posted to the rendezvous slot,
    so other ranks can make progress while this rank computes; ``wait()``
    blocks only until the remaining ranks arrive.
    """

    def __init__(self, world: "ThreadedWorld", op: str, key: Tuple, rank: int, slot: _CollectiveSlot) -> None:
        self._world = world
        self._op = op
        self._key = key
        self._rank = rank
        self._slot = slot
        self._result: Optional[np.ndarray] = None
        self._finished = False

    def is_done(self) -> bool:
        return self._finished or self._slot.ready.is_set()

    def wait(self) -> np.ndarray:
        if not self._finished:
            self._result = self._world.finish_collective(self._op, self._key, self._rank, self._slot)
            self._finished = True
        return self._result


class ThreadedWorld:
    """Shared state for an in-process world of ``world_size`` ranks."""

    def __init__(self, world_size: int, cost_model: Optional[PerformanceModel] = None, timeout: float = 60.0) -> None:
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.timeout = timeout
        self.log = CommunicationLog(world_size, cost_model)
        self._lock = threading.Lock()
        self._slots: Dict[Tuple, _CollectiveSlot] = {}
        self._barrier = threading.Barrier(world_size)

    def communicator(self, rank: int) -> "ThreadedCommunicator":
        if not 0 <= rank < self.world_size:
            raise ValueError(f"rank {rank} out of range for world size {self.world_size}")
        return ThreadedCommunicator(self, rank)

    # ------------------------------------------------------------- internals
    def _slot(self, key: Tuple, group_size: int) -> _CollectiveSlot:
        with self._lock:
            slot = self._slots.get(key)
            if slot is None:
                slot = _CollectiveSlot(group_size)
                self._slots[key] = slot
            return slot

    def _release(self, key: Tuple, slot: _CollectiveSlot) -> None:
        with self._lock:
            slot.consumed += 1
            if slot.consumed >= slot.group_size:
                self._slots.pop(key, None)

    def post_collective(
        self,
        op: str,
        key: Tuple,
        rank: int,
        group: Tuple[int, ...],
        value: Optional[np.ndarray],
        reducer: Optional[Callable[[List[np.ndarray]], np.ndarray]],
        src: Optional[int] = None,
        fused_count: int = 1,
    ) -> _CollectiveSlot:
        """Post this rank's contribution without blocking; returns the slot.

        The rank whose post completes the group computes the result, records
        the collective in the log (once, tagged with ``fused_count``) and
        releases every waiter.
        """
        slot = self._slot(key, len(group))
        is_producer_complete = False
        with self._lock:
            if value is not None:
                slot.values[rank] = value
            if reducer is not None:
                is_producer_complete = len(slot.values) == len(group)
            else:
                is_producer_complete = src in slot.values
            if is_producer_complete and not slot.ready.is_set():
                if reducer is not None:
                    ordered = [slot.values[r] for r in sorted(slot.values)]
                    slot.result = reducer(ordered)
                else:
                    slot.result = slot.values[src]
                nbytes = int(slot.result.nbytes) if isinstance(slot.result, np.ndarray) else 0
                self_log_ranks = group
                slot.ready.set()
                # Record once per collective (by the completing rank).
                self.log.record_collective(op, nbytes, self_log_ranks, fused_count=fused_count)
        return slot

    def finish_collective(self, op: str, key: Tuple, rank: int, slot: _CollectiveSlot) -> np.ndarray:
        """Block until the posted collective completes and return a private copy."""
        if not slot.ready.wait(self.timeout):
            raise TimeoutError(f"collective {op} {key} timed out on rank {rank}")
        result = slot.result
        self._release(key, slot)
        return np.array(result, copy=True)

    def run_collective(
        self,
        op: str,
        key: Tuple,
        rank: int,
        group: Tuple[int, ...],
        value: Optional[np.ndarray],
        reducer: Optional[Callable[[List[np.ndarray]], np.ndarray]],
        src: Optional[int] = None,
        fused_count: int = 1,
    ) -> np.ndarray:
        """Generic rendezvous: post ``value``, wait for the group, return the result."""
        slot = self.post_collective(op, key, rank, group, value, reducer, src=src, fused_count=fused_count)
        return self.finish_collective(op, key, rank, slot)

    def barrier(self) -> None:
        self._barrier.wait(self.timeout)


class ThreadedCommunicator(Communicator):
    """Rank-local handle onto a :class:`ThreadedWorld`."""

    def __init__(self, world: ThreadedWorld, rank: int) -> None:
        self._world = world
        self._rank = rank
        # Per-group sequence counters generate matching keys across ranks.
        self._sequence: Dict[Tuple[int, ...], int] = {}

    @property
    def rank(self) -> int:
        return self._rank

    @property
    def world_size(self) -> int:
        return self._world.world_size

    @property
    def log(self) -> CommunicationLog:
        return self._world.log

    def _next_key(self, group: Tuple[int, ...]) -> Tuple:
        count = self._sequence.get(group, 0)
        self._sequence[group] = count + 1
        return (group, count)

    def _normalize_group(self, group: Optional[Sequence[int]]) -> Tuple[int, ...]:
        if group is None:
            return tuple(range(self.world_size))
        normalized = tuple(sorted(set(int(r) for r in group)))
        if self._rank not in normalized:
            raise ValueError(f"rank {self._rank} is not part of group {normalized}")
        return normalized

    @staticmethod
    def _mean_reducer(values: List[np.ndarray]) -> np.ndarray:
        # Elementwise mean over the rank axis: bitwise-identical whether the
        # tensors are reduced individually or coalesced into a fused buffer.
        return np.mean(np.stack(values, axis=0), axis=0).astype(values[0].dtype)

    def allreduce_average(self, array: np.ndarray, group: Optional[Sequence[int]] = None) -> np.ndarray:
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            return array
        key = ("allreduce",) + self._next_key(group_t)
        result = self._world.run_collective(
            "allreduce",
            key,
            self._rank,
            group_t,
            np.asarray(array),
            reducer=self._mean_reducer,
        )
        return result

    def iallreduce_average(
        self, array: np.ndarray, group: Optional[Sequence[int]] = None, fused_count: int = 1
    ) -> WorkHandle:
        """Post an allreduce-average without waiting for the other ranks."""
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            return CompletedWork(array)
        key = ("allreduce",) + self._next_key(group_t)
        slot = self._world.post_collective(
            "allreduce",
            key,
            self._rank,
            group_t,
            np.asarray(array),
            reducer=self._mean_reducer,
            fused_count=fused_count,
        )
        return ThreadedWork(self._world, "allreduce", key, self._rank, slot)

    def allreduce_sum(self, array: np.ndarray, group: Optional[Sequence[int]] = None) -> np.ndarray:
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            return array
        key = ("allreduce",) + self._next_key(group_t)
        return self._world.run_collective(
            "allreduce",
            key,
            self._rank,
            group_t,
            np.asarray(array),
            reducer=lambda values: np.sum(np.stack(values, axis=0), axis=0).astype(values[0].dtype),
        )

    def broadcast(self, array: Optional[np.ndarray], src: int, group: Optional[Sequence[int]] = None) -> np.ndarray:
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            if array is None:
                raise ValueError("broadcast source value must be provided on the source rank")
            return array
        key = ("broadcast",) + self._next_key(group_t)
        value = np.asarray(array) if (array is not None and self._rank == src) else None
        return self._world.run_collective("broadcast", key, self._rank, group_t, value, reducer=None, src=src)

    def ibroadcast(
        self,
        array: Optional[np.ndarray],
        src: int,
        group: Optional[Sequence[int]] = None,
        fused_count: int = 1,
    ) -> WorkHandle:
        """Post a broadcast without waiting; non-source ranks post an empty contribution."""
        group_t = self._normalize_group(group)
        if len(group_t) == 1:
            if array is None:
                raise ValueError("broadcast source value must be provided on the source rank")
            return CompletedWork(array)
        key = ("broadcast",) + self._next_key(group_t)
        value = np.asarray(array) if (array is not None and self._rank == src) else None
        slot = self._world.post_collective(
            "broadcast", key, self._rank, group_t, value, reducer=None, src=src, fused_count=fused_count
        )
        return ThreadedWork(self._world, "broadcast", key, self._rank, slot)

    def barrier(self) -> None:
        self._world.barrier()


def run_spmd(world_size: int, fn: Callable[[ThreadedCommunicator], object], cost_model: Optional[PerformanceModel] = None) -> List[object]:
    """Run ``fn(comm)`` on every rank of a fresh :class:`ThreadedWorld` and collect results.

    Exceptions raised on any rank are re-raised in the caller after all
    threads have finished (so a failing rank cannot silently hang the test).
    """
    world = ThreadedWorld(world_size, cost_model=cost_model)
    results: List[object] = [None] * world_size
    errors: List[Optional[BaseException]] = [None] * world_size

    def target(rank: int) -> None:
        try:
            results[rank] = fn(world.communicator(rank))
        except BaseException as exc:  # noqa: BLE001 - propagate to the main thread
            errors[rank] = exc

    threads = [threading.Thread(target=target, args=(rank,), daemon=True) for rank in range(world_size)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for rank, error in enumerate(errors):
        if error is not None:
            raise RuntimeError(f"rank {rank} failed") from error
    return results
