"""Distributed substrate: communicators, the bucketed collective engine, data-parallel helpers and the cost model."""

from .backend import (
    CommEvent,
    CommunicationLog,
    Communicator,
    CompletedWork,
    SingleProcessCommunicator,
    WorkHandle,
)
from .collectives import (
    AllreduceSpec,
    BroadcastSpec,
    BucketEntry,
    BucketManager,
    GradientBucketSpec,
    OverlapScheduler,
    TensorBucket,
)
from .cost_model import (
    A100,
    DGX_A100_FABRIC,
    EDR_INFINIBAND,
    ETHERNET_10G,
    V100,
    DeviceSpec,
    NetworkSpec,
    PerformanceModel,
    choose_bucket_cap,
)
from .ddp import (
    DistributedDataParallel,
    GradientAveragingSubscriber,
    allreduce_gradients,
    broadcast_parameters,
    flatten_arrays,
    unflatten_array,
)
from .sampler import DistributedSampler, shard_batch
from .threaded import ThreadedCommunicator, ThreadedWork, ThreadedWorld, run_spmd

__all__ = [
    "Communicator",
    "SingleProcessCommunicator",
    "CommunicationLog",
    "CommEvent",
    "WorkHandle",
    "CompletedWork",
    "BucketEntry",
    "TensorBucket",
    "BucketManager",
    "BroadcastSpec",
    "AllreduceSpec",
    "GradientBucketSpec",
    "OverlapScheduler",
    "ThreadedWorld",
    "ThreadedCommunicator",
    "ThreadedWork",
    "run_spmd",
    "DistributedDataParallel",
    "GradientAveragingSubscriber",
    "allreduce_gradients",
    "broadcast_parameters",
    "flatten_arrays",
    "unflatten_array",
    "DistributedSampler",
    "shard_batch",
    "DeviceSpec",
    "NetworkSpec",
    "PerformanceModel",
    "choose_bucket_cap",
    "V100",
    "A100",
    "EDR_INFINIBAND",
    "DGX_A100_FABRIC",
    "ETHERNET_10G",
]
