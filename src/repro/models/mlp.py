"""Simple multi-layer perceptron used in tests, examples and micro-benchmarks."""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from .. import nn
from ..tensor import Tensor

__all__ = ["MLP"]


class MLP(nn.Module):
    """Fully-connected classifier with ReLU activations.

    Parameters
    ----------
    in_features:
        Input dimensionality.
    hidden_sizes:
        Widths of the hidden layers.
    num_classes:
        Output dimensionality (class logits).
    """

    def __init__(
        self,
        in_features: int,
        hidden_sizes: Sequence[int],
        num_classes: int,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        sizes = [in_features, *hidden_sizes]
        layers: list[nn.Module] = []
        for prev, nxt in zip(sizes[:-1], sizes[1:]):
            layers.append(nn.Linear(prev, nxt, rng=rng))
            layers.append(nn.ReLU())
        layers.append(nn.Linear(sizes[-1], num_classes, rng=rng))
        self.layers = nn.Sequential(*layers)

    def forward(self, x: Tensor) -> Tensor:
        if len(x.shape) > 2:
            x = x.reshape(x.shape[0], -1)
        return self.layers(x)
