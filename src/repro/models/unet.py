"""U-Net (Ronneberger et al. 2015) for binary segmentation.

The paper trains a U-Net on brain-MRI tumour segmentation (LGG dataset) and
applies K-FAC to *all* convolutional layers.  The architecture here follows
the reference Kaggle implementation cited by the paper (four encoder stages,
bottleneck, four decoder stages with skip connections), with a configurable
base width so CPU-scale training is feasible.  Nearest-neighbour upsampling +
convolution replaces transposed convolution; the K-FAC-visible layer
population (Conv2d only) is unchanged.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .. import nn
from ..tensor import Tensor

__all__ = ["UNet"]


class DoubleConv(nn.Module):
    """(Conv -> BN -> ReLU) x 2, the basic U-Net building block."""

    def __init__(self, in_channels: int, out_channels: int, rng=None) -> None:
        super().__init__()
        self.block = nn.Sequential(
            nn.Conv2d(in_channels, out_channels, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(out_channels),
            nn.ReLU(),
            nn.Conv2d(out_channels, out_channels, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(out_channels),
            nn.ReLU(),
        )

    def forward(self, x: Tensor) -> Tensor:
        return self.block(x)


class UNet(nn.Module):
    """Encoder/decoder segmentation network with skip connections.

    Parameters
    ----------
    in_channels:
        Number of input image channels (3 for the paper's MR images).
    out_channels:
        Number of output mask channels (1 for binary tumour masks).
    base_width:
        Channel count of the first encoder stage; doubles at every stage.
    depth:
        Number of down/up-sampling stages.
    """

    def __init__(
        self,
        in_channels: int = 3,
        out_channels: int = 1,
        base_width: int = 32,
        depth: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.depth = depth
        widths = [base_width * (2 ** i) for i in range(depth + 1)]

        encoders = []
        prev = in_channels
        for width in widths[:-1]:
            encoders.append(DoubleConv(prev, width, rng=rng))
            prev = width
        self.encoders = nn.ModuleList(encoders)
        self.pool = nn.MaxPool2d(2)
        self.bottleneck = DoubleConv(widths[-2], widths[-1], rng=rng)

        upsamples = []
        decoders = []
        for width in reversed(widths[:-1]):
            upsamples.append(
                nn.Sequential(nn.Upsample2d(2), nn.Conv2d(width * 2, width, 3, padding=1, bias=False, rng=rng))
            )
            decoders.append(DoubleConv(width * 2, width, rng=rng))
        self.upsamples = nn.ModuleList(upsamples)
        self.decoders = nn.ModuleList(decoders)
        self.head = nn.Conv2d(widths[0], out_channels, 1, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        skips = []
        out = x
        for encoder in self.encoders:
            out = encoder(out)
            skips.append(out)
            out = self.pool(out)
        out = self.bottleneck(out)
        for upsample, decoder, skip in zip(self.upsamples, self.decoders, reversed(skips)):
            out = upsample(out)
            out = Tensor.concatenate([skip, out], axis=1)
            out = decoder(out)
        return self.head(out)
