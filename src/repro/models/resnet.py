"""ResNet family (He et al. 2016).

Two stems are provided:

* the **ImageNet** stem (7x7 stride-2 convolution + max pooling) used by
  ResNet-18/34/50/101/152 in the paper's Table 5 / Figure 6 memory and
  iteration-time studies, and
* the **CIFAR** stem (3x3 convolution) used by ResNet-20/32 for the
  Figure 1 convergence comparison.

A ``width_multiplier`` scales channel counts so convergence experiments can
run on CPU while the memory/communication analyses can use the paper's exact
layer shapes (``width_multiplier=1.0``), since K-FAC factor sizes depend only
on channel counts and kernel sizes, not spatial resolution.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Type, Union

import numpy as np

from .. import nn
from ..tensor import Tensor

__all__ = [
    "BasicBlock",
    "Bottleneck",
    "ResNet",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "cifar_resnet20",
    "cifar_resnet32",
    "cifar_resnet56",
]


def _scaled(channels: int, multiplier: float) -> int:
    return max(4, int(round(channels * multiplier)))


class BasicBlock(nn.Module):
    """Two 3x3 convolutions with an identity (or projected) shortcut."""

    expansion = 1

    def __init__(self, in_channels: int, channels: int, stride: int = 1, rng=None) -> None:
        super().__init__()
        self.conv1 = nn.Conv2d(in_channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.conv2 = nn.Conv2d(channels, channels, 3, stride=1, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(channels)
        self.relu = nn.ReLU()
        out_channels = channels * self.expansion
        if stride != 1 or in_channels != out_channels:
            self.downsample: Optional[nn.Module] = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x if self.downsample is None else self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.bn2(self.conv2(out))
        return self.relu(out + identity)


class Bottleneck(nn.Module):
    """1x1 / 3x3 / 1x1 bottleneck block with expansion 4 (ResNet-50/101/152)."""

    expansion = 4

    def __init__(self, in_channels: int, channels: int, stride: int = 1, rng=None) -> None:
        super().__init__()
        out_channels = channels * self.expansion
        self.conv1 = nn.Conv2d(in_channels, channels, 1, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(channels)
        self.conv2 = nn.Conv2d(channels, channels, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(channels)
        self.conv3 = nn.Conv2d(channels, out_channels, 1, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(out_channels)
        self.relu = nn.ReLU()
        if stride != 1 or in_channels != out_channels:
            self.downsample: Optional[nn.Module] = nn.Sequential(
                nn.Conv2d(in_channels, out_channels, 1, stride=stride, bias=False, rng=rng),
                nn.BatchNorm2d(out_channels),
            )
        else:
            self.downsample = None

    def forward(self, x: Tensor) -> Tensor:
        identity = x if self.downsample is None else self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return self.relu(out + identity)


class ResNet(nn.Module):
    """Configurable residual network."""

    def __init__(
        self,
        block: Type[Union[BasicBlock, Bottleneck]],
        layers: Sequence[int],
        num_classes: int = 1000,
        in_channels: int = 3,
        width_multiplier: float = 1.0,
        stem: str = "imagenet",
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        if stem not in ("imagenet", "cifar"):
            raise ValueError(f"unknown stem {stem!r}")
        self.block = block
        self.stem_type = stem
        widths = [_scaled(c, width_multiplier) for c in (64, 128, 256, 512)]
        if stem == "cifar":
            widths = [_scaled(c, width_multiplier) for c in (16, 32, 64, 64)]

        self.in_planes = widths[0]
        if stem == "imagenet":
            self.conv1 = nn.Conv2d(in_channels, widths[0], 7, stride=2, padding=3, bias=False, rng=rng)
            self.maxpool: Optional[nn.Module] = nn.MaxPool2d(3, stride=2, padding=1)
        else:
            self.conv1 = nn.Conv2d(in_channels, widths[0], 3, stride=1, padding=1, bias=False, rng=rng)
            self.maxpool = None
        self.bn1 = nn.BatchNorm2d(widths[0])
        self.relu = nn.ReLU()

        stage_defs = list(zip(widths[: len(layers)], layers, [1, 2, 2, 2][: len(layers)]))
        stages: List[nn.Module] = []
        for width, count, stride in stage_defs:
            stages.append(self._make_stage(block, width, count, stride, rng))
        self.stages = nn.Sequential(*stages)
        self.avgpool = nn.GlobalAvgPool2d()
        self.fc = nn.Linear(self.in_planes, num_classes, rng=rng)

    def _make_stage(self, block, channels: int, count: int, stride: int, rng) -> nn.Sequential:
        blocks = [block(self.in_planes, channels, stride=stride, rng=rng)]
        self.in_planes = channels * block.expansion
        for _ in range(1, count):
            blocks.append(block(self.in_planes, channels, stride=1, rng=rng))
        return nn.Sequential(*blocks)

    def forward(self, x: Tensor) -> Tensor:
        out = self.relu(self.bn1(self.conv1(x)))
        if self.maxpool is not None:
            out = self.maxpool(out)
        out = self.stages(out)
        out = self.avgpool(out)
        return self.fc(out)


def resnet18(num_classes: int = 1000, width_multiplier: float = 1.0, rng=None, **kwargs) -> ResNet:
    """ResNet-18 (ImageNet stem, BasicBlock)."""
    return ResNet(BasicBlock, [2, 2, 2, 2], num_classes, width_multiplier=width_multiplier, rng=rng, **kwargs)


def resnet34(num_classes: int = 1000, width_multiplier: float = 1.0, rng=None, **kwargs) -> ResNet:
    """ResNet-34 (ImageNet stem, BasicBlock)."""
    return ResNet(BasicBlock, [3, 4, 6, 3], num_classes, width_multiplier=width_multiplier, rng=rng, **kwargs)


def resnet50(num_classes: int = 1000, width_multiplier: float = 1.0, rng=None, **kwargs) -> ResNet:
    """ResNet-50 (ImageNet stem, Bottleneck)."""
    return ResNet(Bottleneck, [3, 4, 6, 3], num_classes, width_multiplier=width_multiplier, rng=rng, **kwargs)


def resnet101(num_classes: int = 1000, width_multiplier: float = 1.0, rng=None, **kwargs) -> ResNet:
    """ResNet-101 (ImageNet stem, Bottleneck)."""
    return ResNet(Bottleneck, [3, 4, 23, 3], num_classes, width_multiplier=width_multiplier, rng=rng, **kwargs)


def resnet152(num_classes: int = 1000, width_multiplier: float = 1.0, rng=None, **kwargs) -> ResNet:
    """ResNet-152 (ImageNet stem, Bottleneck)."""
    return ResNet(Bottleneck, [3, 8, 36, 3], num_classes, width_multiplier=width_multiplier, rng=rng, **kwargs)


def cifar_resnet20(num_classes: int = 10, width_multiplier: float = 1.0, rng=None, **kwargs) -> ResNet:
    """CIFAR-style ResNet-20 (3 stages of 3 BasicBlocks)."""
    return ResNet(
        BasicBlock, [3, 3, 3], num_classes, width_multiplier=width_multiplier, stem="cifar", rng=rng, **kwargs
    )


def cifar_resnet32(num_classes: int = 10, width_multiplier: float = 1.0, rng=None, **kwargs) -> ResNet:
    """CIFAR-style ResNet-32 (the Figure 1 model)."""
    return ResNet(
        BasicBlock, [5, 5, 5], num_classes, width_multiplier=width_multiplier, stem="cifar", rng=rng, **kwargs
    )


def cifar_resnet56(num_classes: int = 10, width_multiplier: float = 1.0, rng=None, **kwargs) -> ResNet:
    """CIFAR-style ResNet-56."""
    return ResNet(
        BasicBlock, [9, 9, 9], num_classes, width_multiplier=width_multiplier, stem="cifar", rng=rng, **kwargs
    )
