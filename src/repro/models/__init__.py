"""Model zoo: the paper's four application families plus test helpers."""

from .bert import BertConfig, BertLayer, BertModel, bert_base, bert_large, bert_tiny
from .maskrcnn import MaskRCNNHeads, MaskRCNNLoss, MaskRCNNOutput
from .mlp import MLP
from .resnet import (
    BasicBlock,
    Bottleneck,
    ResNet,
    cifar_resnet20,
    cifar_resnet32,
    cifar_resnet56,
    resnet18,
    resnet34,
    resnet50,
    resnet101,
    resnet152,
)
from .unet import UNet

__all__ = [
    "MLP",
    "ResNet",
    "BasicBlock",
    "Bottleneck",
    "resnet18",
    "resnet34",
    "resnet50",
    "resnet101",
    "resnet152",
    "cifar_resnet20",
    "cifar_resnet32",
    "cifar_resnet56",
    "UNet",
    "BertConfig",
    "BertLayer",
    "BertModel",
    "bert_tiny",
    "bert_base",
    "bert_large",
    "MaskRCNNHeads",
    "MaskRCNNLoss",
    "MaskRCNNOutput",
]
