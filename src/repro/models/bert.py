"""BERT-style masked-language-model transformer (Devlin et al. 2018).

The paper pretrains BERT-Large (24 layers, hidden 1024) and applies K-FAC to
every ``Linear`` layer inside the transformer blocks while *excluding* the
token embedding and the vocabulary prediction head (their Kronecker factor
would be ``vocab_size x vocab_size``, section 5.2).  :class:`BertModel` here
follows the same block structure with configurable dimensions; ``bert_large``
builds the paper's exact layer shapes (used only for memory/communication
analysis), while small configurations are used for actual CPU training runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import nn
from ..tensor import Tensor

__all__ = ["BertConfig", "BertLayer", "BertModel", "bert_base", "bert_large", "bert_tiny"]


@dataclass
class BertConfig:
    """Architecture hyperparameters for :class:`BertModel`."""

    vocab_size: int = 1000
    hidden_size: int = 128
    num_layers: int = 2
    num_heads: int = 4
    intermediate_size: int = 512
    max_position_embeddings: int = 128
    dropout: float = 0.0

    def __post_init__(self) -> None:
        if self.hidden_size % self.num_heads != 0:
            raise ValueError("hidden_size must be divisible by num_heads")


class BertLayer(nn.Module):
    """One transformer encoder block: self-attention + feed-forward, post-LN."""

    def __init__(self, config: BertConfig, rng=None) -> None:
        super().__init__()
        self.attention = nn.MultiHeadSelfAttention(config.hidden_size, config.num_heads, config.dropout, rng=rng)
        self.attention_norm = nn.LayerNorm(config.hidden_size)
        self.intermediate = nn.Linear(config.hidden_size, config.intermediate_size, rng=rng)
        self.activation = nn.GELU()
        self.output = nn.Linear(config.intermediate_size, config.hidden_size, rng=rng)
        self.output_norm = nn.LayerNorm(config.hidden_size)
        self.dropout = nn.Dropout(config.dropout)

    def forward(self, x: Tensor, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        attn = self.attention(x, attention_mask=attention_mask)
        x = self.attention_norm(x + self.dropout(attn))
        ff = self.output(self.activation(self.intermediate(x)))
        return self.output_norm(x + self.dropout(ff))


class BertModel(nn.Module):
    """Masked-LM transformer: embeddings, encoder stack, vocabulary head."""

    def __init__(self, config: BertConfig, rng: Optional[np.random.Generator] = None) -> None:
        super().__init__()
        self.config = config
        self.token_embedding = nn.Embedding(config.vocab_size, config.hidden_size, rng=rng)
        self.position_embedding = nn.Embedding(config.max_position_embeddings, config.hidden_size, rng=rng)
        self.embedding_norm = nn.LayerNorm(config.hidden_size)
        self.layers = nn.ModuleList(BertLayer(config, rng=rng) for _ in range(config.num_layers))
        # Prediction head: hidden -> vocab.  Excluded from K-FAC like the paper.
        self.mlm_head = nn.Linear(config.hidden_size, config.vocab_size, rng=rng)

    def encode(self, token_ids: np.ndarray, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        """Return the final hidden states ``(N, L, H)``."""
        token_ids = np.asarray(token_ids, dtype=np.int64)
        positions = np.arange(token_ids.shape[1])[None, :].repeat(token_ids.shape[0], axis=0)
        hidden = self.token_embedding(token_ids) + self.position_embedding(positions)
        hidden = self.embedding_norm(hidden)
        for layer in self.layers:
            hidden = layer(hidden, attention_mask=attention_mask)
        return hidden

    def forward(self, token_ids: np.ndarray, attention_mask: Optional[np.ndarray] = None) -> Tensor:
        """Return masked-LM logits ``(N, L, vocab_size)``."""
        return self.mlm_head(self.encode(token_ids, attention_mask=attention_mask))

    def kfac_excluded_modules(self) -> list[nn.Module]:
        """Modules that must not be preconditioned (embeddings and MLM head)."""
        return [self.token_embedding, self.position_embedding, self.mlm_head]


def bert_tiny(vocab_size: int = 1000, rng=None) -> BertModel:
    """A 2-layer, 128-hidden BERT used for CPU-scale convergence experiments."""
    return BertModel(BertConfig(vocab_size=vocab_size, hidden_size=128, num_layers=2, num_heads=4, intermediate_size=512), rng=rng)


def bert_base(vocab_size: int = 30522, rng=None) -> BertModel:
    """BERT-Base layer shapes (12 layers, hidden 768)."""
    config = BertConfig(
        vocab_size=vocab_size,
        hidden_size=768,
        num_layers=12,
        num_heads=12,
        intermediate_size=3072,
        max_position_embeddings=512,
    )
    return BertModel(config, rng=rng)


def bert_large(vocab_size: int = 30522, rng=None) -> BertModel:
    """BERT-Large layer shapes (24 layers, hidden 1024) as used in the paper."""
    config = BertConfig(
        vocab_size=vocab_size,
        hidden_size=1024,
        num_layers=24,
        num_heads=16,
        intermediate_size=4096,
        max_position_embeddings=512,
    )
    return BertModel(config, rng=rng)
