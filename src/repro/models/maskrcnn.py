"""Mask R-CNN ROI-head analogue.

The paper applies K-FAC only to the convolutional and linear layers inside
the Mask R-CNN *region-of-interest (ROI) heads* (section 5.2) — the backbone
and region proposal network are left to plain SGD.  Reproducing full COCO
detection is out of scope for a CPU environment, so this module implements
the part of the model K-FAC actually sees:

* a small convolutional feature extractor standing in for ROI-pooled
  backbone features,
* the **box head** — two fully connected layers followed by a classification
  branch and a box-regression branch (the standard Mask R-CNN ROI box head),
* the **mask head** — a stack of 3x3 convolutions followed by a 1x1 mask
  predictor.

The model consumes fixed-size "ROI crops" from the synthetic detection
dataset and is trained with a combined classification + box-regression +
mask loss, which exercises the same multi-task, small-K-FAC-overhead profile
the paper observes (Mask R-CNN has the smallest K-FAC memory overhead and is
insensitive to ``grad_worker_frac``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .. import nn
from ..tensor import Tensor

__all__ = ["MaskRCNNHeads", "MaskRCNNLoss", "MaskRCNNOutput"]


@dataclass
class MaskRCNNOutput:
    """Outputs of the ROI heads for a batch of ROI crops."""

    class_logits: Tensor
    box_deltas: Tensor
    mask_logits: Tensor


class MaskRCNNHeads(nn.Module):
    """ROI box head + mask head over fixed-size ROI feature crops."""

    def __init__(
        self,
        in_channels: int = 3,
        num_classes: int = 5,
        roi_size: int = 14,
        feature_channels: int = 32,
        representation_size: int = 256,
        mask_layers: int = 4,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        super().__init__()
        self.num_classes = num_classes
        self.roi_size = roi_size
        # Stand-in for ROI-aligned backbone features.
        self.feature_extractor = nn.Sequential(
            nn.Conv2d(in_channels, feature_channels, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(feature_channels),
            nn.ReLU(),
            nn.Conv2d(feature_channels, feature_channels, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(feature_channels),
            nn.ReLU(),
        )
        pooled = roi_size // 2
        self.pool = nn.MaxPool2d(2)
        box_in = feature_channels * pooled * pooled
        # Box head: 2 FC layers + classification & regression branches.
        self.box_fc1 = nn.Linear(box_in, representation_size, rng=rng)
        self.box_fc2 = nn.Linear(representation_size, representation_size, rng=rng)
        self.class_predictor = nn.Linear(representation_size, num_classes, rng=rng)
        self.box_predictor = nn.Linear(representation_size, 4 * num_classes, rng=rng)
        # Mask head: stack of 3x3 convs + 1x1 predictor, one mask per class.
        mask_convs: list[nn.Module] = []
        for _ in range(mask_layers):
            mask_convs.append(nn.Conv2d(feature_channels, feature_channels, 3, padding=1, bias=False, rng=rng))
            mask_convs.append(nn.ReLU())
        self.mask_convs = nn.Sequential(*mask_convs)
        self.mask_predictor = nn.Conv2d(feature_channels, num_classes, 1, rng=rng)
        self.relu = nn.ReLU()

    def forward(self, rois: Tensor) -> MaskRCNNOutput:
        features = self.feature_extractor(rois)
        pooled = self.pool(features)
        flat = pooled.reshape(pooled.shape[0], -1)
        box_features = self.relu(self.box_fc2(self.relu(self.box_fc1(flat))))
        class_logits = self.class_predictor(box_features)
        box_deltas = self.box_predictor(box_features)
        mask_logits = self.mask_predictor(self.mask_convs(features))
        return MaskRCNNOutput(class_logits=class_logits, box_deltas=box_deltas, mask_logits=mask_logits)


class MaskRCNNLoss(nn.Module):
    """Combined ROI-head loss: classification + box regression + per-class mask."""

    def __init__(self, box_weight: float = 1.0, mask_weight: float = 1.0) -> None:
        super().__init__()
        self.classification = nn.CrossEntropyLoss()
        self.box_weight = box_weight
        self.mask_weight = mask_weight

    def forward(self, output: MaskRCNNOutput, labels: np.ndarray, boxes: np.ndarray, masks: np.ndarray) -> Tensor:
        labels = np.asarray(labels, dtype=np.int64)
        n = labels.shape[0]
        num_classes = output.class_logits.shape[1]

        cls_loss = self.classification(output.class_logits, labels)

        # Box regression only for the ground-truth class of each ROI (smooth-L1
        # replaced by L2 for simplicity; gradient structure is equivalent).
        deltas = output.box_deltas.reshape(n, num_classes, 4)
        selected_deltas = deltas[np.arange(n), labels]
        box_target = Tensor(np.asarray(boxes, dtype=selected_deltas.dtype))
        diff = selected_deltas - box_target
        box_loss = (diff * diff).mean()

        # Mask loss: binary cross entropy on the ground-truth class channel.
        mask_logits = output.mask_logits[np.arange(n), labels]
        mask_target = Tensor(np.asarray(masks, dtype=mask_logits.dtype))
        probs_loss = nn.BCEWithLogitsLoss()(mask_logits, mask_target)

        return cls_loss + self.box_weight * box_loss + self.mask_weight * probs_loss
