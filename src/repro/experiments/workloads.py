"""Trainable CPU-scale workloads mirroring the paper's four applications.

Each builder returns a :class:`TrainableWorkload` bundling a model, a data
loader over a synthetic training set, a loss closure, a validation-metric
closure over a held-out set, and the modules that must be excluded from K-FAC
(the BERT embeddings and MLM head, section 5.2).  The convergence benchmarks
train each workload twice — once with its baseline optimizer, once with the
same optimizer plus the KAISA preconditioner — and compare iterations/epochs
to the target metric, reproducing the structure of Figures 1 and 5 and
Table 3.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from .. import nn, optim
from ..data import (
    DataLoader,
    Subset,
    SpiralClassification,
    SyntheticDetectionCrops,
    SyntheticImageClassification,
    SyntheticMaskedLM,
    SyntheticSegmentation,
)
from ..models import MLP, MaskRCNNHeads, MaskRCNNLoss, UNet, bert_tiny, cifar_resnet20
from ..nn.module import Module
from ..tensor import Tensor, no_grad
from ..training.metrics import (
    classification_accuracy,
    detection_score,
    masked_lm_accuracy,
    segmentation_dice,
)
from .configs import SMALL_WORKLOADS, SmallWorkloadConfig

__all__ = ["TrainableWorkload", "build_workload", "make_optimizer", "WORKLOAD_BUILDERS"]


@dataclass
class TrainableWorkload:
    """A ready-to-train workload: model, data, loss, metric and K-FAC exclusions."""

    name: str
    config: SmallWorkloadConfig
    model: Module
    train_loader: DataLoader
    forward_loss: Callable[[Module, object], Tensor]
    evaluate: Callable[[Module], float]
    kfac_skip_modules: Tuple[Module, ...] = ()


def make_optimizer(name: str, parameters, lr: float, momentum: float = 0.9, weight_decay: float = 0.0):
    """Construct the baseline optimizer named in Table 1."""
    lowered = name.lower()
    if lowered == "sgd":
        return optim.SGD(parameters, lr=lr, momentum=momentum, weight_decay=weight_decay)
    if lowered == "adam":
        return optim.Adam(parameters, lr=lr, weight_decay=weight_decay)
    if lowered == "adamw":
        return optim.AdamW(parameters, lr=lr, weight_decay=weight_decay)
    if lowered in ("lamb", "fusedlamb"):
        return optim.LAMB(parameters, lr=lr, weight_decay=weight_decay)
    raise ValueError(f"unknown optimizer {name!r}")


# --------------------------------------------------------------------------
# Classification (Figure 1 / Figure 5a analogue)
# --------------------------------------------------------------------------
def build_classification_workload(
    config: Optional[SmallWorkloadConfig] = None,
    seed: int = 0,
    num_train: int = 768,
    num_val: int = 256,
    image_size: int = 12,
    num_classes: int = 10,
    noise: float = 1.8,
    width_multiplier: float = 0.25,
) -> TrainableWorkload:
    config = config or SMALL_WORKLOADS["cifar_resnet"]
    rng = np.random.default_rng(seed)
    # Train and validation come from one generated dataset so both splits share
    # the same class prototypes (like splitting a real labelled dataset).
    full = SyntheticImageClassification(
        num_train + num_val, num_classes=num_classes, image_size=image_size, noise=noise, seed=seed
    )
    train = Subset(full, range(num_train))
    val_images = full.images[num_train:]
    val_labels = full.labels[num_train:]
    model = cifar_resnet20(num_classes=num_classes, width_multiplier=width_multiplier, rng=rng)
    loader = DataLoader(train, batch_size=config.batch_size, shuffle=True, seed=seed)
    loss_fn = nn.CrossEntropyLoss()

    def forward_loss(m: Module, batch) -> Tensor:
        images, labels = batch
        return loss_fn(m(Tensor(images)), labels)

    def evaluate(m: Module) -> float:
        with no_grad():
            logits = m(Tensor(val_images)).numpy()
        return classification_accuracy(logits, val_labels)

    return TrainableWorkload(
        name="cifar_resnet",
        config=config,
        model=model,
        train_loader=loader,
        forward_loss=forward_loss,
        evaluate=evaluate,
    )


# --------------------------------------------------------------------------
# Segmentation (Figure 5c analogue)
# --------------------------------------------------------------------------
def build_unet_workload(
    config: Optional[SmallWorkloadConfig] = None,
    seed: int = 0,
    num_train: int = 192,
    num_val: int = 48,
    image_size: int = 24,
    base_width: int = 8,
    depth: int = 2,
) -> TrainableWorkload:
    config = config or SMALL_WORKLOADS["unet"]
    rng = np.random.default_rng(seed)
    train = SyntheticSegmentation(num_train, image_size=image_size, seed=seed)
    val = SyntheticSegmentation(num_val, image_size=image_size, seed=seed + 10_000)
    model = UNet(in_channels=3, out_channels=1, base_width=base_width, depth=depth, rng=rng)
    loader = DataLoader(train, batch_size=config.batch_size, shuffle=True, seed=seed)
    dice_loss = nn.DiceLoss()
    bce_loss = nn.BCEWithLogitsLoss()

    def forward_loss(m: Module, batch) -> Tensor:
        images, masks = batch
        logits = m(Tensor(images))
        return dice_loss(logits, masks) + bce_loss(logits, masks)

    def evaluate(m: Module) -> float:
        with no_grad():
            logits = m(Tensor(val.images)).numpy()
        return segmentation_dice(logits, val.masks)

    return TrainableWorkload(
        name="unet",
        config=config,
        model=model,
        train_loader=loader,
        forward_loss=forward_loss,
        evaluate=evaluate,
    )


# --------------------------------------------------------------------------
# Detection ROI heads (Figure 5b analogue)
# --------------------------------------------------------------------------
def build_maskrcnn_workload(
    config: Optional[SmallWorkloadConfig] = None,
    seed: int = 0,
    num_train: int = 384,
    num_val: int = 96,
    num_classes: int = 5,
    crop_size: int = 14,
) -> TrainableWorkload:
    config = config or SMALL_WORKLOADS["mask_rcnn"]
    rng = np.random.default_rng(seed)
    train = SyntheticDetectionCrops(num_train, num_classes=num_classes, crop_size=crop_size, seed=seed)
    val = SyntheticDetectionCrops(num_val, num_classes=num_classes, crop_size=crop_size, seed=seed + 10_000)
    model = MaskRCNNHeads(num_classes=num_classes, roi_size=crop_size, feature_channels=16, representation_size=64, mask_layers=2, rng=rng)
    loader = DataLoader(train, batch_size=config.batch_size, shuffle=True, seed=seed)
    loss_fn = MaskRCNNLoss()

    def forward_loss(m: Module, batch) -> Tensor:
        output = m(Tensor(batch["image"]))
        return loss_fn(output, batch["label"], batch["box"], batch["mask"])

    def evaluate(m: Module) -> float:
        with no_grad():
            output = m(Tensor(val.images))
        return detection_score(output.class_logits.numpy(), val.labels, output.mask_logits.numpy(), val.masks)

    return TrainableWorkload(
        name="mask_rcnn",
        config=config,
        model=model,
        train_loader=loader,
        forward_loss=forward_loss,
        evaluate=evaluate,
    )


# --------------------------------------------------------------------------
# Masked language modelling (Table 3 analogue)
# --------------------------------------------------------------------------
def build_bert_workload(
    config: Optional[SmallWorkloadConfig] = None,
    seed: int = 0,
    num_train: int = 512,
    num_val: int = 128,
    vocab_size: int = 120,
    seq_length: int = 24,
) -> TrainableWorkload:
    config = config or SMALL_WORKLOADS["bert"]
    rng = np.random.default_rng(seed)
    # One corpus, split into train/validation so both share the same Markov chains.
    full = SyntheticMaskedLM(num_train + num_val, vocab_size=vocab_size, seq_length=seq_length, seed=seed)
    train = Subset(full, range(num_train))
    model = bert_tiny(vocab_size=vocab_size, rng=rng)
    loader = DataLoader(train, batch_size=config.batch_size, shuffle=True, seed=seed)
    loss_fn = nn.MaskedLMCrossEntropyLoss()
    val_batches = [full[i] for i in range(num_train, num_train + num_val)]
    val_inputs = np.stack([b["input_ids"] for b in val_batches])
    val_labels = np.stack([b["labels"] for b in val_batches])

    def forward_loss(m: Module, batch) -> Tensor:
        logits = m(batch["input_ids"], attention_mask=batch["attention_mask"])
        return loss_fn(logits, batch["labels"])

    def evaluate(m: Module) -> float:
        with no_grad():
            logits = m(val_inputs).numpy()
        return masked_lm_accuracy(logits, val_labels)

    return TrainableWorkload(
        name="bert",
        config=config,
        model=model,
        train_loader=loader,
        forward_loss=forward_loss,
        evaluate=evaluate,
        kfac_skip_modules=tuple(model.kfac_excluded_modules()),
    )


# --------------------------------------------------------------------------
# MLP on spirals (quickstart / tests)
# --------------------------------------------------------------------------
def build_mlp_workload(
    config: Optional[SmallWorkloadConfig] = None,
    seed: int = 0,
    num_train: int = 768,
    num_val: int = 256,
) -> TrainableWorkload:
    config = config or SMALL_WORKLOADS["mlp"]
    rng = np.random.default_rng(seed)
    train = SpiralClassification(num_train, seed=seed)
    val = SpiralClassification(num_val, seed=seed + 10_000)
    model = MLP(2, [32, 32], train.num_classes, rng=rng)
    loader = DataLoader(train, batch_size=config.batch_size, shuffle=True, seed=seed)
    loss_fn = nn.CrossEntropyLoss()

    def forward_loss(m: Module, batch) -> Tensor:
        features, labels = batch
        return loss_fn(m(Tensor(features)), labels)

    def evaluate(m: Module) -> float:
        with no_grad():
            logits = m(Tensor(val.features)).numpy()
        return classification_accuracy(logits, val.labels)

    return TrainableWorkload(
        name="mlp",
        config=config,
        model=model,
        train_loader=loader,
        forward_loss=forward_loss,
        evaluate=evaluate,
    )


WORKLOAD_BUILDERS: Dict[str, Callable[..., TrainableWorkload]] = {
    "cifar_resnet": build_classification_workload,
    "unet": build_unet_workload,
    "mask_rcnn": build_maskrcnn_workload,
    "bert": build_bert_workload,
    "mlp": build_mlp_workload,
}


def build_workload(name: str, **kwargs) -> TrainableWorkload:
    """Build a trainable workload by name (see :data:`WORKLOAD_BUILDERS`)."""
    if name not in WORKLOAD_BUILDERS:
        raise ValueError(f"unknown workload {name!r}; available: {sorted(WORKLOAD_BUILDERS)}")
    return WORKLOAD_BUILDERS[name](**kwargs)
