"""Experiment harness: convergence comparisons and strategy sweeps.

These functions are shared between ``benchmarks/`` (which prints the
paper-style tables) and ``examples/`` (which demonstrate the public API).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

import dataclasses

from ..distributed import run_spmd
from ..kfac import KFAC, KFACConfig, IterationTimeModel, KFACWorkloadSpec
from ..memory import KFACMemoryModel
from ..training import Trainer, TrainingCurve
from .configs import SmallWorkloadConfig
from .workloads import TrainableWorkload, build_workload, make_optimizer

__all__ = [
    "ConvergenceResult",
    "run_convergence_comparison",
    "sweep_grad_worker_frac",
    "scaling_projection",
    "measured_memory_report",
]


@dataclass
class ConvergenceResult:
    """Baseline vs KAISA convergence comparison for one workload."""

    workload: str
    target_metric: float
    baseline_curve: TrainingCurve
    kaisa_curve: TrainingCurve

    def summary(self) -> Dict[str, Optional[float]]:
        target = self.target_metric
        return {
            "target": target,
            "baseline_best": self.baseline_curve.best_metric,
            "kaisa_best": self.kaisa_curve.best_metric,
            "baseline_iters_to_target": self.baseline_curve.iterations_to_target(target),
            "kaisa_iters_to_target": self.kaisa_curve.iterations_to_target(target),
            "baseline_epochs_to_target": self.baseline_curve.epochs_to_target(target),
            "kaisa_epochs_to_target": self.kaisa_curve.epochs_to_target(target),
        }

    def iteration_reduction_percent(self) -> Optional[float]:
        """Percentage reduction in iterations-to-target from KAISA (higher is better)."""
        baseline = self.baseline_curve.iterations_to_target(self.target_metric)
        kaisa = self.kaisa_curve.iterations_to_target(self.target_metric)
        if baseline is None or kaisa is None or baseline == 0:
            return None
        return 100.0 * (baseline - kaisa) / baseline


def _train(
    workload: TrainableWorkload,
    use_kfac: bool,
    grad_worker_frac: float,
    epochs: Optional[int],
    seed: int,
    iteration_time: Optional[float] = None,
    kfac_kwargs: Optional[dict] = None,
) -> TrainingCurve:
    config = workload.config
    lr = config.kfac_lr if use_kfac else config.baseline_lr
    optimizer = make_optimizer(
        config.baseline_optimizer,
        workload.model.parameters(),
        lr=lr,
        momentum=config.momentum,
        weight_decay=config.weight_decay,
    )
    preconditioner = None
    if use_kfac:
        kfac_config = workload.config.kfac_config(lr=lr, grad_worker_frac=grad_worker_frac)
        # Split overrides into config fields (hyperparameters) and per-run
        # constructor arguments (communicator, profiler, ...).
        config_fields = {f.name for f in dataclasses.fields(KFACConfig)}
        extras = {}
        for key, value in (kfac_kwargs or {}).items():
            if key in config_fields:
                kfac_config = kfac_config.replace(**{key: value})
            else:
                extras[key] = value
        skip_modules = extras.pop("skip_modules", workload.kfac_skip_modules)
        preconditioner = KFAC.from_config(workload.model, kfac_config, skip_modules=skip_modules, **extras)
    trainer = Trainer(
        workload.model,
        optimizer,
        workload.forward_loss,
        preconditioner=preconditioner,
        iteration_time=iteration_time,
    )
    curve = TrainingCurve(name=f"{workload.name}-{'kaisa' if use_kfac else config.baseline_optimizer}")
    trainer.fit(
        workload.train_loader,
        epochs=epochs if epochs is not None else config.epochs,
        evaluate_fn=workload.evaluate,
        curve=curve,
    )
    return curve


def run_convergence_comparison(
    name: str,
    epochs: Optional[int] = None,
    grad_worker_frac: float = 1.0,
    seed: int = 0,
    workload_kwargs: Optional[dict] = None,
    baseline_iteration_time: Optional[float] = None,
    kaisa_iteration_time: Optional[float] = None,
) -> ConvergenceResult:
    """Train a workload with its baseline optimizer and with KAISA, same global batch size.

    Two independent workload instances are built from the same seed so both
    runs see identical models, data ordering and initial weights — isolating
    the effect of second-order preconditioning exactly as in section 5.3.
    """
    kwargs = workload_kwargs or {}
    baseline_workload = build_workload(name, seed=seed, **kwargs)
    kaisa_workload = build_workload(name, seed=seed, **kwargs)
    baseline_curve = _train(
        baseline_workload, use_kfac=False, grad_worker_frac=grad_worker_frac, epochs=epochs, seed=seed,
        iteration_time=baseline_iteration_time,
    )
    kaisa_curve = _train(
        kaisa_workload, use_kfac=True, grad_worker_frac=grad_worker_frac, epochs=epochs, seed=seed,
        iteration_time=kaisa_iteration_time,
    )
    return ConvergenceResult(
        workload=name,
        target_metric=baseline_workload.config.target_metric,
        baseline_curve=baseline_curve,
        kaisa_curve=kaisa_curve,
    )


def sweep_grad_worker_frac(
    spec: KFACWorkloadSpec,
    world_size: int,
    fracs: Sequence[float],
    optimizer: str = "sgd",
    activation_bytes_per_sample: int = 0,
    model: Optional[IterationTimeModel] = None,
) -> Dict[float, Dict[str, float]]:
    """Iteration time + memory overhead across grad_worker_frac values (Figure 6)."""
    time_model = model if model is not None else IterationTimeModel()
    memory_model = KFACMemoryModel(
        spec.layers,
        spec.param_count,
        optimizer=optimizer,
        factor_dtype_bytes=spec.factor_dtype_bytes,
        eigen_dtype_bytes=spec.eigen_dtype_bytes,
        activation_bytes_per_sample=activation_bytes_per_sample,
    )
    results: Dict[float, Dict[str, float]] = {}
    for frac in fracs:
        breakdown = time_model.kfac_breakdown(spec, world_size, frac)
        # The representative per-GPU overhead is the mean across ranks: with fewer
        # layers than ranks the busiest rank's eigen memory saturates early, while
        # the paper's per-GPU measurements grow smoothly (linearly) with the fraction.
        overhead = memory_model.overhead_bytes(world_size, frac, rank="mean")
        results[frac] = {
            "iteration_time": breakdown.total,
            "kfac_overhead_time": breakdown.kfac_overhead,
            "memory_overhead_bytes": float(overhead),
            "baseline_iteration_time": time_model.baseline_iteration_time(spec, world_size),
        }
    return results


def measured_memory_report(
    name: str,
    world_size: int = 2,
    grad_worker_frac: float = 1.0,
    steps: int = 2,
    seed: int = 0,
    workload_kwargs: Optional[dict] = None,
    kfac_overrides: Optional[dict] = None,
) -> Dict[str, object]:
    """Live per-rank K-FAC memory from a real run on the threaded backend.

    Trains ``steps`` optimization steps of a real (small) workload under the
    requested distribution strategy with factor and eigen updates every
    iteration, then reads :meth:`KFAC.memory_usage` on every rank.  The
    analytic per-rank prediction for the *same registered layers* (factors on
    every rank; eigen state on each layer's gradient workers) is returned
    alongside, so paper-style memory tables (Tables 4/5) can print a
    live-measured column next to the modeled one and the two can be checked
    against each other byte-exactly.
    """

    def program(comm):
        workload = build_workload(name, seed=seed, **(workload_kwargs or {}))
        config = workload.config
        optimizer = make_optimizer(
            config.baseline_optimizer,
            workload.model.parameters(),
            lr=config.kfac_lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        overrides = {"factor_update_freq": 1, "inv_update_freq": 1, **(kfac_overrides or {})}
        kfac_config = config.kfac_config(lr=config.kfac_lr, grad_worker_frac=grad_worker_frac).replace(
            **overrides
        )
        preconditioner = KFAC.from_config(
            workload.model, kfac_config, comm=comm, skip_modules=workload.kfac_skip_modules
        )
        trainer = Trainer(
            workload.model, optimizer, workload.forward_loss, preconditioner=preconditioner, comm=comm
        )
        done = 0
        while done < steps:
            for batch in workload.train_loader:
                trainer.train_step(batch)
                done += 1
                if done >= steps:
                    break
        measured = preconditioner.memory_usage()
        include_outer = preconditioner.compute_eigen_outer
        predicted_factors = sum(layer.expected_factor_bytes() for layer in preconditioner.layers.values())
        predicted_eigen = sum(
            layer.expected_eigen_bytes(include_outer=include_outer)
            for layer_name, layer in preconditioner.layers.items()
            if preconditioner.groups[layer_name].is_grad_worker(comm.rank)
        )
        # Solver-state bytes (cached inverses / CG warm starts) exist only on
        # a layer's gradient workers and only for non-eigen solve strategies;
        # the default eigen path predicts (and measures) zero.
        predicted_solver = 0
        if preconditioner.solvers is not None:
            for layer_name, solver in preconditioner.solvers.items():
                if preconditioner.groups[layer_name].is_grad_worker(comm.rank):
                    predicted_solver += solver.solver_bytes()
        predicted = {
            "factors": predicted_factors,
            "eigen": predicted_eigen,
            "solver": predicted_solver,
            "total": predicted_factors + predicted_eigen + predicted_solver,
        }
        return {"measured": measured, "predicted": predicted}

    per_rank = run_spmd(world_size, program)
    totals = [entry["measured"]["total"] for entry in per_rank]
    return {
        "workload": name,
        "world_size": world_size,
        "grad_worker_frac": grad_worker_frac,
        "per_rank": per_rank,
        "measured_total_max": max(totals),
        "measured_total_mean": float(np.mean(totals)),
    }


def scaling_projection(
    spec: KFACWorkloadSpec,
    world_sizes: Sequence[int],
    baseline_iterations: int,
    kaisa_iterations: int,
    strategies: Optional[Dict[str, float]] = None,
    model: Optional[IterationTimeModel] = None,
    scale_update_freq_with_world: bool = False,
    reference_world_size: Optional[int] = None,
) -> Dict[str, Dict[int, float]]:
    """Projected end-to-end speedup of KAISA variants over the baseline optimizer (Figure 8).

    ``scale_update_freq_with_world`` reproduces the paper's ResNet-50 setup
    where the K-FAC update frequency is scaled inversely with the global batch
    size so the number of K-FAC updates per training sample stays constant.
    """
    time_model = model if model is not None else IterationTimeModel()
    if strategies is None:
        strategies = {"MEM-OPT": None, "HYBRID-OPT (1/2)": 0.5, "COMM-OPT": 1.0}
    reference = reference_world_size or min(world_sizes)
    results: Dict[str, Dict[int, float]] = {name: {} for name in strategies}
    for world_size in world_sizes:
        working_spec = spec
        if scale_update_freq_with_world:
            scale = reference / world_size
            working_spec = KFACWorkloadSpec(
                name=spec.name,
                layers=spec.layers,
                param_count=spec.param_count,
                local_batch_size=spec.local_batch_size,
                baseline_compute_time=spec.baseline_compute_time,
                factor_update_freq=max(1, int(round(spec.factor_update_freq * scale))),
                inv_update_freq=max(1, int(round(spec.inv_update_freq * scale))),
                samples_per_input=spec.samples_per_input,
                grad_dtype_bytes=spec.grad_dtype_bytes,
                factor_dtype_bytes=spec.factor_dtype_bytes,
                eigen_dtype_bytes=spec.eigen_dtype_bytes,
                grad_accumulation_steps=spec.grad_accumulation_steps,
            )
        for strategy_name, frac in strategies.items():
            actual_frac = (1.0 / world_size) if frac is None else frac
            results[strategy_name][world_size] = time_model.speedup_over_baseline(
                working_spec, world_size, actual_frac, baseline_iterations, kaisa_iterations
            )
    return results
