"""Experiment configurations, workloads and the reproduction harness."""

from .configs import (
    PAPER_BASELINES,
    PAPER_HYPERPARAMETERS,
    PAPER_RESULTS,
    SMALL_WORKLOADS,
    BaselineSpec,
    HyperparameterSpec,
    SmallWorkloadConfig,
)
from .harness import (
    ConvergenceResult,
    measured_memory_report,
    run_convergence_comparison,
    scaling_projection,
    sweep_grad_worker_frac,
)
from .model_shapes import (
    PAPER_WORKLOAD_NAMES,
    collect_layer_shapes,
    paper_layer_shapes,
    paper_workload_spec,
)
from .reporting import (
    BENCH_SCHEMA_VERSION,
    ascii_curve,
    bench_run_metadata,
    format_markdown_table,
    format_table,
    write_bench_json,
)
from .workloads import WORKLOAD_BUILDERS, TrainableWorkload, build_workload, make_optimizer

__all__ = [
    "BaselineSpec",
    "HyperparameterSpec",
    "SmallWorkloadConfig",
    "PAPER_BASELINES",
    "PAPER_HYPERPARAMETERS",
    "PAPER_RESULTS",
    "SMALL_WORKLOADS",
    "TrainableWorkload",
    "build_workload",
    "make_optimizer",
    "WORKLOAD_BUILDERS",
    "ConvergenceResult",
    "run_convergence_comparison",
    "sweep_grad_worker_frac",
    "scaling_projection",
    "measured_memory_report",
    "collect_layer_shapes",
    "paper_layer_shapes",
    "paper_workload_spec",
    "PAPER_WORKLOAD_NAMES",
    "format_table",
    "format_markdown_table",
    "ascii_curve",
    "BENCH_SCHEMA_VERSION",
    "bench_run_metadata",
    "write_bench_json",
]
