"""Experiment configurations and the paper's reference numbers.

``PAPER_BASELINES`` and ``PAPER_HYPERPARAMETERS`` transcribe Tables 1 and 2.
``PAPER_RESULTS`` records the headline numbers from section 5 that the
benchmark harness prints next to the measured values, so EXPERIMENTS.md can
always be regenerated from a single source of truth.

``SMALL_WORKLOADS`` holds the CPU-scale hyperparameters actually used for the
convergence experiments in this reproduction (same schema as Table 2, smaller
batch sizes and update frequencies because the synthetic datasets are small).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..kfac.config import KFACConfig

__all__ = [
    "BaselineSpec",
    "HyperparameterSpec",
    "SmallWorkloadConfig",
    "PAPER_BASELINES",
    "PAPER_HYPERPARAMETERS",
    "PAPER_RESULTS",
    "SMALL_WORKLOADS",
]


@dataclass(frozen=True)
class BaselineSpec:
    """Row of Table 1: reference target metric and hardware."""

    app: str
    metric_name: str
    target: float
    gpu: str
    num_gpus: int
    baseline_optimizer: str


@dataclass(frozen=True)
class HyperparameterSpec:
    """Row of Table 2: K-FAC hyperparameters per application."""

    app: str
    global_batch_size: int
    learning_rate: float
    warmup_iterations: int
    inv_update_freq: int  # K_freq
    factor_update_freq: int  # F_freq
    damping: float = 0.003
    grad_worker_frac: float = 1.0


#: Table 1 — baseline performance and hardware summary.
PAPER_BASELINES: Dict[str, BaselineSpec] = {
    "resnet50": BaselineSpec("ResNet-50", "val accuracy", 0.759, "V100/A100", 64, "SGD"),
    "mask_rcnn": BaselineSpec("Mask R-CNN", "bbox mAP", 0.377, "V100", 32, "SGD"),
    "unet": BaselineSpec("U-Net", "val DSC", 0.910, "A100", 4, "ADAM"),
    "bert_large": BaselineSpec("BERT-Large", "SQuAD v1.1 F1", 0.908, "A100", 8, "Fused LAMB"),
}

#: Table 2 — hyperparameters used for each application.
PAPER_HYPERPARAMETERS: Dict[str, HyperparameterSpec] = {
    "resnet50": HyperparameterSpec("ResNet-50", 2048, 0.8, 3130, 500, 50),
    "mask_rcnn": HyperparameterSpec("Mask R-CNN", 64, 8e-2, 800, 500, 50),
    "unet": HyperparameterSpec("U-Net", 64, 4e-4, 500, 200, 20),
    "bert_large": HyperparameterSpec("BERT-Large", 65536, 5e-5, 103, 100, 10),
}

#: Headline paper results used for paper-vs-measured reporting.
PAPER_RESULTS: Dict[str, Dict[str, float]] = {
    "figure1": {"sgd_epoch_fraction": 1.0, "kfac_epoch_fraction": 0.6},  # ~40% fewer epochs
    "figure5_resnet50": {"time_reduction_pct": 24.3, "sgd_epochs": 65, "kfac_epochs": 46},
    "figure5_mask_rcnn": {"time_reduction_pct": 14.9, "sgd_iters": 25640, "kfac_iters": 21000},
    "figure5_unet": {"time_reduction_pct": 25.4, "adam_epochs": 50, "kfac_epochs": 30},
    "table3_bert": {"time_reduction_pct": 36.3, "lamb_iters": 1536, "kaisa_iters": 800},
    "table4_resnet50": {"time_reduction_pct": 32.5},
    "table4_bert": {"time_reduction_pct": 41.6},
    "table5_overhead_ratio": {"min": 1.5, "max": 2.9},
    "figure6_resnet50": {"speedup_pct_frac1_vs_min": 24.4},
    "section44_precondition": {"per_layer_time_reduction_pct": 53.0},
}


@dataclass(frozen=True)
class SmallWorkloadConfig:
    """CPU-scale hyperparameters for the trainable synthetic workloads."""

    name: str
    batch_size: int
    epochs: int
    target_metric: float
    baseline_optimizer: str
    baseline_lr: float
    kfac_lr: float
    damping: float = 0.003
    factor_update_freq: int = 5
    inv_update_freq: int = 10
    kl_clip: float = 0.001
    momentum: float = 0.9
    weight_decay: float = 0.0
    grad_worker_frac: float = 1.0
    seed: int = 0

    def kfac_config(self, **overrides) -> KFACConfig:
        """The workload's K-FAC hyperparameters as a :class:`KFACConfig`.

        ``overrides`` replace individual fields (e.g. ``grad_worker_frac`` for
        a strategy sweep); the result is re-validated.
        """
        base = KFACConfig(
            lr=self.kfac_lr,
            damping=self.damping,
            kl_clip=self.kl_clip,
            factor_update_freq=self.factor_update_freq,
            inv_update_freq=self.inv_update_freq,
            grad_worker_frac=self.grad_worker_frac,
        )
        return base.replace(**overrides) if overrides else base


#: CPU-scale analogues of the Table 2 configurations.
SMALL_WORKLOADS: Dict[str, SmallWorkloadConfig] = {
    "cifar_resnet": SmallWorkloadConfig(
        name="cifar_resnet",
        batch_size=64,
        epochs=14,
        target_metric=0.90,
        baseline_optimizer="sgd",
        baseline_lr=0.05,
        kfac_lr=0.05,
        kl_clip=0.01,
        factor_update_freq=5,
        inv_update_freq=10,
    ),
    "unet": SmallWorkloadConfig(
        name="unet",
        batch_size=16,
        epochs=12,
        target_metric=0.97,
        baseline_optimizer="adam",
        baseline_lr=3e-3,
        kfac_lr=3e-3,
        factor_update_freq=4,
        inv_update_freq=8,
    ),
    "mask_rcnn": SmallWorkloadConfig(
        name="mask_rcnn",
        batch_size=32,
        epochs=12,
        target_metric=0.80,
        baseline_optimizer="sgd",
        baseline_lr=0.05,
        kfac_lr=0.02,
        damping=0.01,
        factor_update_freq=4,
        inv_update_freq=8,
    ),
    "bert": SmallWorkloadConfig(
        name="bert",
        batch_size=32,
        epochs=12,
        target_metric=0.11,
        baseline_optimizer="lamb",
        baseline_lr=8e-3,
        kfac_lr=8e-3,
        kl_clip=0.01,
        damping=0.01,
        factor_update_freq=5,
        inv_update_freq=10,
    ),
    "mlp": SmallWorkloadConfig(
        name="mlp",
        batch_size=64,
        epochs=15,
        target_metric=0.95,
        baseline_optimizer="sgd",
        baseline_lr=0.1,
        kfac_lr=0.1,
        factor_update_freq=2,
        inv_update_freq=4,
    ),
}
