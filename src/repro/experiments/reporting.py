"""Table rendering and the shared ``BENCH_*.json`` writer for the benchmark harness.

Every benchmark emits its numbers through :func:`write_bench_json`, which
wraps the benchmark-specific payload in a versioned envelope::

    {
      "schema_version": 1,
      "name": "comm_fusion",
      "run": { ... platform / toggle metadata, no git required ... },
      "metrics": { ... optional repro.observability.MetricsReport dump ... },
      "data": { ... the benchmark's own payload, unchanged ... }
    }

so downstream consumers can detect format changes (bump
:data:`BENCH_SCHEMA_VERSION` whenever the envelope changes shape) and every
file records the environment toggles it ran under without shelling out to
``git``.
"""

from __future__ import annotations

import datetime
import json
import os
import platform
import sys
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence

__all__ = [
    "format_table",
    "format_markdown_table",
    "ascii_curve",
    "BENCH_SCHEMA_VERSION",
    "bench_run_metadata",
    "write_bench_json",
]

#: Version of the BENCH_*.json envelope written by :func:`write_bench_json`.
BENCH_SCHEMA_VERSION = 1

#: Environment toggles recorded in every benchmark file (reproducibility).
_RECORDED_TOGGLES = (
    "REPRO_COMM_OVERLAP",
    "REPRO_HOOK_PIPELINE",
    "REPRO_ADAPTIVE",
    "REPRO_TRACE",
    "REPRO_KERNEL",
)


def bench_run_metadata() -> Dict[str, Any]:
    """Machine/toggle metadata stamped into benchmark files (no git required)."""
    import numpy

    return {
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
        "python": platform.python_version(),
        "numpy": numpy.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "argv0": Path(sys.argv[0]).name if sys.argv else "",
        "env": {name: os.environ.get(name, "") for name in _RECORDED_TOGGLES},
    }


def write_bench_json(
    path,
    name: str,
    data: Dict[str, Any],
    metrics: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write one benchmark's results in the versioned BENCH envelope.

    ``data`` is the benchmark-specific payload (stored verbatim under
    ``"data"``); ``metrics`` is an optional aggregated-metrics block —
    typically ``MetricsReport.to_dict()`` from a traced run.
    """
    document = {
        "schema_version": BENCH_SCHEMA_VERSION,
        "name": str(name),
        "run": bench_run_metadata(),
        "metrics": metrics or {},
        "data": data,
    }
    path = Path(path)
    path.write_text(json.dumps(document, indent=2, sort_keys=False))
    return path


def _stringify(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)


def ascii_curve(values: Sequence[float], width: int = 60, height: int = 10, label: str = "") -> str:
    """Tiny ASCII line plot for validation-metric curves in benchmark output."""
    if not values:
        return f"{label}(empty curve)"
    lo, hi = min(values), max(values)
    span = hi - lo if hi > lo else 1.0
    columns = min(width, len(values))
    # Resample to the plot width.
    indices = [int(round(i * (len(values) - 1) / max(columns - 1, 1))) for i in range(columns)]
    sampled = [values[i] for i in indices]
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + span * level / height
        row = "".join("*" if value >= threshold else " " for value in sampled)
        rows.append(f"{threshold:8.3f} |{row}")
    header = f"{label}  (min={lo:.3f}, max={hi:.3f})"
    return "\n".join([header] + rows)
