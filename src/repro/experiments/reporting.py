"""Plain-text and markdown table rendering for the benchmark harness."""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["format_table", "format_markdown_table", "ascii_curve"]


def _stringify(value) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(headers: Sequence[str], rows: Iterable[Sequence], title: Optional[str] = None) -> str:
    """Render an aligned plain-text table."""
    str_rows = [[_stringify(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_markdown_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a GitHub-flavoured markdown table."""
    lines = ["| " + " | ".join(headers) + " |", "|" + "|".join("---" for _ in headers) + "|"]
    for row in rows:
        lines.append("| " + " | ".join(_stringify(cell) for cell in row) + " |")
    return "\n".join(lines)


def ascii_curve(values: Sequence[float], width: int = 60, height: int = 10, label: str = "") -> str:
    """Tiny ASCII line plot for validation-metric curves in benchmark output."""
    if not values:
        return f"{label}(empty curve)"
    lo, hi = min(values), max(values)
    span = hi - lo if hi > lo else 1.0
    columns = min(width, len(values))
    # Resample to the plot width.
    indices = [int(round(i * (len(values) - 1) / max(columns - 1, 1))) for i in range(columns)]
    sampled = [values[i] for i in indices]
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + span * level / height
        row = "".join("*" if value >= threshold else " " for value in sampled)
        rows.append(f"{threshold:8.3f} |{row}")
    header = f"{label}  (min={lo:.3f}, max={hi:.3f})"
    return "\n".join([header] + rows)
