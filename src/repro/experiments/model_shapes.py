"""Paper-scale layer shapes for the memory and iteration-time studies.

Figures 6-8 and Tables 4-5 depend only on the *shapes* of the K-FAC
preconditioned layers (factor dimensions, gradient sizes, parameter counts),
not on actually executing the models.  For the ResNet family we instantiate
the real :mod:`repro.models.resnet` modules at full width and read the shapes
off the modules; for BERT-Large and the Mask R-CNN ROI heads (too large /
too entangled with detection machinery to instantiate here) the shapes are
constructed analytically from the published architectures.

The per-application ``baseline_compute_time`` values are calibrated from the
paper's own reported call rates (section 5.5): ResNet-50 calls ``KFAC.step()``
4-6 times per second on 64 V100s, Mask R-CNN about 3 times per second, and
BERT-Large only every ~120 seconds because of gradient accumulation.  Other
ResNet depths are scaled by their relative FLOP counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..kfac.analysis import KFACWorkloadSpec
from ..kfac.factors import FactorRepr
from ..kfac.strategy import LayerShapeInfo
from ..models import resnet18, resnet50, resnet101, resnet152
from ..nn.conv import Conv2d
from ..nn.embedding import Embedding
from ..nn.linear import Linear
from ..nn.module import Module
from ..nn.norm import BatchNorm2d, LayerNorm

__all__ = [
    "collect_layer_shapes",
    "paper_layer_shapes",
    "paper_workload_spec",
    "PAPER_WORKLOAD_NAMES",
]

PAPER_WORKLOAD_NAMES = ("resnet18", "resnet50", "resnet101", "resnet152", "mask_rcnn", "bert_large")


def collect_layer_shapes(
    model: Module,
    skip_modules: Sequence[Module] = (),
    include_structured: bool = False,
) -> List[LayerShapeInfo]:
    """Extract the K-FAC layer shapes from an instantiated model.

    Linear/Conv2d (dense factors) are always collected — the population the
    paper's Tables 4-5 cost.  ``include_structured=True`` additionally covers
    the structured-factor handlers (LayerNorm / affine BatchNorm2d with a
    diagonal G, Embedding with a diagonal A), tagging each
    :class:`LayerShapeInfo` with the same :class:`FactorRepr` the real
    handlers use; the default keeps the paper-table specs byte-identical.
    """
    skip = {id(m) for m in skip_modules}
    shapes: List[LayerShapeInfo] = []
    for name, module in model.named_modules():
        if id(module) in skip:
            continue
        a_repr = g_repr = None
        if isinstance(module, Linear):
            a_dim = module.in_features + (1 if module.bias is not None else 0)
            g_dim = module.out_features
        elif isinstance(module, Conv2d):
            kh, kw = module.kernel_size
            a_dim = module.in_channels * kh * kw + (1 if module.bias is not None else 0)
            g_dim = module.out_channels
        elif include_structured and isinstance(module, (LayerNorm, BatchNorm2d)):
            if isinstance(module, BatchNorm2d) and not module.affine:
                continue
            a_dim = 1 + (1 if getattr(module, "bias", None) is not None else 0)
            g_dim = module.normalized_shape if isinstance(module, LayerNorm) else module.num_features
            g_repr = FactorRepr.diagonal(g_dim)
        elif include_structured and isinstance(module, Embedding):
            a_dim = module.num_embeddings
            g_dim = module.embedding_dim
            a_repr = FactorRepr.diagonal(a_dim)
        else:
            continue
        shapes.append(
            LayerShapeInfo(
                name=name,
                a_dim=a_dim,
                g_dim=g_dim,
                grad_numel=a_dim * g_dim,
                a_repr=a_repr,
                g_repr=g_repr,
            )
        )
    return shapes


def _linear_shape(name: str, in_features: int, out_features: int, bias: bool = True) -> LayerShapeInfo:
    a_dim = in_features + (1 if bias else 0)
    return LayerShapeInfo(name=name, a_dim=a_dim, g_dim=out_features, grad_numel=a_dim * out_features)


def _conv_shape(name: str, in_channels: int, out_channels: int, kernel: int, bias: bool = False) -> LayerShapeInfo:
    a_dim = in_channels * kernel * kernel + (1 if bias else 0)
    return LayerShapeInfo(name=name, a_dim=a_dim, g_dim=out_channels, grad_numel=a_dim * out_channels)


def _bert_large_shapes() -> Tuple[List[LayerShapeInfo], int]:
    """BERT-Large transformer-block linear layers (embeddings / MLM head excluded, section 5.2)."""
    hidden, intermediate, layers, vocab = 1024, 4096, 24, 30522
    shapes: List[LayerShapeInfo] = []
    for i in range(layers):
        for proj in ("query", "key", "value", "attention_output"):
            shapes.append(_linear_shape(f"encoder.{i}.{proj}", hidden, hidden))
        shapes.append(_linear_shape(f"encoder.{i}.intermediate", hidden, intermediate))
        shapes.append(_linear_shape(f"encoder.{i}.output", intermediate, hidden))
    # Total parameter count (including the non-preconditioned embeddings/head)
    # for the gradient-allreduce volume: ~335M parameters.
    per_block = 4 * (hidden * hidden + hidden) + hidden * intermediate + intermediate + intermediate * hidden + hidden
    per_block += 4 * 2 * hidden  # two LayerNorms
    embeddings = vocab * hidden + 512 * hidden + 2 * hidden
    head = hidden * vocab + vocab
    params = layers * per_block + embeddings + head
    return shapes, params


def _mask_rcnn_roi_head_shapes() -> Tuple[List[LayerShapeInfo], int]:
    """Mask R-CNN ROI-head layers preconditioned by K-FAC.

    Following the paper's treatment of BERT's vocabulary-sized layers, the
    first box-head FC (12544 -> 1024) is excluded: its Kronecker factor would
    be 12544 x 12544 (about 630 MB in FP32), which is incompatible with the
    ~100-200 MB K-FAC overhead the paper reports for Mask R-CNN, so the
    reference implementation cannot be decomposing it.  The remaining ROI-head
    population (box FC2 + predictors, four 256-channel mask convolutions and
    the mask predictor) reproduces both the layer count and the overhead
    magnitude.
    """
    num_classes = 81
    shapes = [
        _linear_shape("roi_heads.box_head.fc2", 1024, 1024),
        _linear_shape("roi_heads.box_predictor.cls_score", 1024, num_classes),
        _linear_shape("roi_heads.box_predictor.bbox_pred", 1024, 4 * num_classes),
    ]
    for i in range(4):
        shapes.append(_conv_shape(f"roi_heads.mask_head.fcn{i + 1}", 256, 256, 3, bias=True))
    shapes.append(_conv_shape("roi_heads.mask_predictor", 256, num_classes, 1, bias=True))
    # Whole-model parameter count (backbone + FPN + RPN + heads) for gradient allreduce.
    params = 44_000_000
    return shapes, params


# Per-GPU forward+backward+update compute time (seconds) on the paper's hardware,
# calibrated from the KFAC.step() call rates in section 5.5 and relative model FLOPs.
_BASELINE_COMPUTE_TIME = {
    "resnet18": 0.075,
    "resnet50": 0.170,
    "resnet101": 0.300,
    "resnet152": 0.340,
    "mask_rcnn": 0.300,
    "bert_large": 110.0,  # per optimizer step; gradient accumulation spans ~64 micro-batches
}

_LOCAL_BATCH = {
    "resnet18": 32,
    "resnet50": 32,
    "resnet101": 32,
    "resnet152": 24,
    "mask_rcnn": 2,
    "bert_large": 512,  # effective per-GPU samples per optimizer step (8 x 64 accumulation)
}

# Average rows contributed to the factors per input example (spatial positions
# for convolutional models, sequence length for BERT).
_SAMPLES_PER_INPUT = {
    "resnet18": 200.0,
    "resnet50": 200.0,
    "resnet101": 200.0,
    "resnet152": 200.0,
    "mask_rcnn": 100.0,
    "bert_large": 512.0,
}

_UPDATE_FREQS = {
    "resnet18": (50, 500),
    "resnet50": (50, 500),
    "resnet101": (50, 500),
    "resnet152": (50, 500),
    "mask_rcnn": (50, 500),
    "bert_large": (10, 100),
}

_GRAD_ACCUMULATION = {"bert_large": 64}

_RESNET_BUILDERS = {
    "resnet18": resnet18,
    "resnet50": resnet50,
    "resnet101": resnet101,
    "resnet152": resnet152,
}

_SHAPE_CACHE: Dict[str, Tuple[List[LayerShapeInfo], int]] = {}


def paper_layer_shapes(name: str) -> Tuple[List[LayerShapeInfo], int]:
    """Return (K-FAC layer shapes, total trainable parameter count) for a paper model."""
    if name in _SHAPE_CACHE:
        return _SHAPE_CACHE[name]
    if name in _RESNET_BUILDERS:
        rng = np.random.default_rng(0)
        model = _RESNET_BUILDERS[name](num_classes=1000, width_multiplier=1.0, rng=rng)
        result = (collect_layer_shapes(model), model.num_parameters())
    elif name == "bert_large":
        result = _bert_large_shapes()
    elif name == "mask_rcnn":
        result = _mask_rcnn_roi_head_shapes()
    else:
        raise ValueError(f"unknown paper workload {name!r}; expected one of {PAPER_WORKLOAD_NAMES}")
    _SHAPE_CACHE[name] = result
    return result


def paper_workload_spec(name: str, precision: str = "fp32") -> KFACWorkloadSpec:
    """Build the :class:`KFACWorkloadSpec` used by the Figure 6/7/8 benchmarks."""
    layers, params = paper_layer_shapes(name)
    factor_freq, inv_freq = _UPDATE_FREQS[name]
    dtype_bytes = 2 if precision in ("fp16", "amp", "half") else 4
    return KFACWorkloadSpec(
        name=name,
        layers=layers,
        param_count=params,
        local_batch_size=_LOCAL_BATCH[name],
        baseline_compute_time=_BASELINE_COMPUTE_TIME[name],
        factor_update_freq=factor_freq,
        inv_update_freq=inv_freq,
        samples_per_input=_SAMPLES_PER_INPUT[name],
        grad_dtype_bytes=dtype_bytes,
        factor_dtype_bytes=dtype_bytes,
        eigen_dtype_bytes=dtype_bytes,
        grad_accumulation_steps=_GRAD_ACCUMULATION.get(name, 1),
    )
