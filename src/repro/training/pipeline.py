"""Hook-driven gradient pipeline: communication posted while backward runs.

The paper's scalability claim is that KAISA hides its communication behind
backprop.  PR 2's engine could *fuse and pipeline* collectives, but it only
posted them once ``allreduce_gradients`` / ``KFAC.step()`` ran — after the
backward pass had already finished.  :class:`GradientPipeline` closes that
gap using the module/parameter event API of :mod:`repro.nn.module` and
:mod:`repro.tensor`:

* subscribers (DDP-style gradient averaging, K-FAC factor allreduces)
  register :class:`~repro.distributed.collectives.GradientBucketSpec` lists
  when the pipeline is **armed** for an optimization step;
* the pipeline plans deterministic, ``bucket_cap_mb``-capped fused buckets
  over those specs (every rank builds the identical plan) and registers
  grad-ready hooks on the gating parameters plus full backward hooks on the
  gating modules;
* as the autograd tape finalizes gradients — in reverse-layer order — each
  bucket whose events have all fired is posted immediately through the
  :class:`~repro.distributed.collectives.OverlapScheduler`, so collectives
  fly while backprop is still computing earlier layers;
* :meth:`flush` posts any remaining buckets, drains the scheduler, removes
  the per-step hooks and notifies subscribers — the single synchronization
  point the :class:`~repro.training.trainer.Trainer` awaits before
  ``optimizer.step()``.

Bucket *payloads* are callables evaluated at posting time, so a subscriber
can fold statistics lazily (K-FAC folds a layer's factor window inside the
payload of the first factor bucket that needs it).  All collectives are
elementwise allreduce-averages over deterministic schedules, so the hooked
path is bitwise identical to the synchronous `allreduce_gradients` +
``KFAC.step()``-time paths.

Gradient accumulation: hooks fire once per micro-batch backward, but the
pipeline is armed only for the *final* micro-batch, so every bucket is
posted exactly once per optimization step, carrying the accumulated (and
micro-batch-scaled) gradients.

Subscribers may register a different spec list every arm — K-FAC under
adaptive scheduling (:mod:`repro.kfac.scheduling`) registers buckets only
for the layers whose factor refresh is due this step, so skipped layers
contribute no buckets and no traffic.  The plan a subscriber derives its
specs from must stay stable from ``arm()`` until ``flush()`` returns; the
scheduler guarantees this by only mutating the plan inside ``KFAC.step()``.

Setting ``REPRO_HOOK_PIPELINE=1`` makes every :class:`Trainer` construct and
drive a pipeline by default (the CI hook-pipeline matrix entry).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..distributed.backend import Communicator, SingleProcessCommunicator
from ..distributed.collectives import AllreduceSpec, GradientBucketSpec, OverlapScheduler, TensorBucket
from ..observability import NULL_TRACER
from ..tensor import Tensor, is_grad_enabled

__all__ = ["GradientPipeline", "default_hook_pipeline"]


def default_hook_pipeline() -> bool:
    """Default for the Trainer's ``pipeline="auto"``, overridable via environment.

    Setting ``REPRO_HOOK_PIPELINE=1`` (or ``true``/``yes``/``on``) makes every
    :class:`~repro.training.trainer.Trainer` drive a :class:`GradientPipeline`
    — used by CI to run the whole suite through the hook-driven path.
    """
    return os.environ.get("REPRO_HOOK_PIPELINE", "").strip().lower() in ("1", "true", "yes", "on")


class _PlannedSpec:
    """One subscriber spec plus its gate ids.

    ``gates`` preserves the spec's declaration order (params then modules,
    first appearance wins) so gate registration iterates deterministically on
    every rank; ``pending`` is the same ids as a set, for O(1) firing.
    """

    __slots__ = ("spec", "gates", "pending")

    def __init__(self, spec: GradientBucketSpec) -> None:
        self.spec = spec
        gates: List[int] = []
        for gate in (*spec.params, *spec.modules):
            gate_id = id(gate)
            if gate_id not in gates:
                gates.append(gate_id)
        self.gates = tuple(gates)
        self.pending = set(gates)

    @property
    def ready(self) -> bool:
        return not self.pending


class _PlannedBucket:
    """A fused bucket of the step plan, posted once all member gates fire."""

    __slots__ = ("bucket", "specs", "posted")

    def __init__(self, bucket: TensorBucket, specs: List[_PlannedSpec]) -> None:
        self.bucket = bucket
        self.specs = specs
        self.posted = False

    @property
    def fully_ready(self) -> bool:
        return all(spec.ready for spec in self.specs)


class GradientPipeline:
    """Posts subscriber communication buckets as gradients become ready.

    Parameters
    ----------
    model:
        The module whose backward pass drives the events (kept for
        introspection; gating objects come from the subscribers' specs).
    comm:
        Communicator shared by every subscriber's collectives.  Defaults to
        the single-process communicator.
    bucket_cap_mb:
        Fused-buffer cap handed to the :class:`OverlapScheduler`'s bucket
        manager (the DDP ``bucket_cap_mb`` analogue).
    """

    def __init__(
        self, model, comm: Optional[Communicator] = None, bucket_cap_mb: float = 25.0, tracer=None
    ) -> None:
        self.model = model
        self.comm = comm if comm is not None else SingleProcessCommunicator()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.scheduler = OverlapScheduler(self.comm, bucket_cap_mb, tracer=self.tracer)
        self.subscribers: List[object] = []
        self.grad_scale: float = 1.0
        self._armed = False
        self._plan: List[_PlannedBucket] = []
        # gate id -> [(planned bucket, planned spec), ...]
        self._gates: Dict[int, List[Tuple[_PlannedBucket, _PlannedSpec]]] = {}
        self._hook_handles: List = []
        #: Buckets posted from backward events vs. at flush() — the former is
        #: the communication that genuinely overlapped the backward pass.
        self.stats = {"buckets_posted_in_backward": 0, "buckets_posted_at_flush": 0}

    def set_tracer(self, tracer) -> None:
        """Adopt ``tracer`` for the pipeline and its scheduler (trainer wiring)."""
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.scheduler.tracer = self.tracer

    @property
    def bucket_cap_mb(self) -> float:
        return self.scheduler.buckets.bucket_cap_mb

    @property
    def armed(self) -> bool:
        return self._armed

    # ---------------------------------------------------------- subscription
    def add_subscriber(self, subscriber) -> None:
        """Register a subscriber.

        A subscriber provides ``pipeline_specs(pipeline) ->
        Sequence[GradientBucketSpec]`` (called at every :meth:`arm`; may
        return an empty list for steps with nothing to communicate) and may
        provide ``on_pipeline_flush(pipeline)``, called after :meth:`flush`
        has drained all collectives.
        """
        if not hasattr(subscriber, "pipeline_specs"):
            raise TypeError(
                f"{type(subscriber).__name__} is not a pipeline subscriber: "
                "it must define pipeline_specs(pipeline)"
            )
        self.subscribers.append(subscriber)

    # ------------------------------------------------------------------- arm
    def arm(self, grad_scale: float = 1.0) -> None:
        """Prepare the bucket plan for the *final* backward of this step.

        ``grad_scale`` is the micro-batch averaging factor (``1/n`` under
        gradient accumulation) subscribers fold into their payloads.  Arm
        immediately before the last micro-batch's forward pass; earlier
        micro-batches run un-armed, so their hook events post nothing.
        Re-arming an armed pipeline discards the stale plan (and any
        collectives it already posted) first.
        """
        if self._armed:
            self._disarm()
            self.scheduler.discard()
        self.grad_scale = float(grad_scale)
        self.stats = {"buckets_posted_in_backward": 0, "buckets_posted_at_flush": 0}
        self._plan = []
        self._gates = {}
        gate_objects: Dict[int, Tuple[object, str]] = {}
        for subscriber in self.subscribers:
            specs = list(subscriber.pipeline_specs(self))
            if not specs:
                continue
            planned = [_PlannedSpec(spec) for spec in specs]
            for spec in specs:
                for param in spec.params:
                    gate_objects.setdefault(id(param), (param, "param"))
                for module in spec.modules:
                    gate_objects.setdefault(id(module), (module, "module"))
            by_key = {p.spec.key: p for p in planned}
            if len(by_key) != len(planned):
                raise ValueError(f"duplicate pipeline spec keys from {type(subscriber).__name__}")
            # Per-subscriber bucket plan: deterministic greedy fusion in the
            # order the subscriber emitted its specs (reverse-layer order by
            # convention, matching gradient readiness during backward).
            for bucket in self.scheduler.buckets.build(
                [(p.spec.key, p.spec.shape, p.spec.dtype) for p in planned]
            ):
                bucket_specs = [by_key[entry.key] for entry in bucket.entries]
                planned_bucket = _PlannedBucket(bucket, bucket_specs)
                self._plan.append(planned_bucket)
                for planned_spec in bucket_specs:
                    # Iterate the declaration-ordered gate tuple, not the
                    # `pending` set: registration order must be identical on
                    # every rank (SPMD103).
                    for gate in planned_spec.gates:
                        self._gates.setdefault(gate, []).append((planned_bucket, planned_spec))
        # One readiness hook per distinct gating object.  A parameter's
        # grad-ready event already fires only once its *last* consumer
        # contributed (the tape counts consumer edges), but a module invoked
        # several times in one forward (weight sharing, recurrence) emits one
        # backward event per invocation — and only after the last of them are
        # e.g. K-FAC's G statistics complete.  So module gates are counted: a
        # forward hook tallies the qualifying calls made while armed, and the
        # gate fires on the matching backward event.
        for gate_id, (obj, kind) in gate_objects.items():
            if kind == "param":
                self._hook_handles.append(
                    obj.register_grad_ready_hook(
                        lambda tensor, gate_id=gate_id: self._gate_fired(gate_id)
                    )
                )
            else:
                counts = {"expected": 0, "seen": 0}

                def on_forward(module, inputs, output, counts=counts) -> None:
                    if isinstance(output, Tensor) and output.requires_grad and is_grad_enabled():
                        counts["expected"] += 1

                def on_backward(module, grad_input, grad_output, gate_id=gate_id, counts=counts) -> None:
                    counts["seen"] += 1
                    if counts["seen"] == counts["expected"]:
                        self._gate_fired(gate_id)

                self._hook_handles.append(obj.register_forward_hook(on_forward))
                self._hook_handles.append(obj.register_full_backward_hook(on_backward))
        self._armed = True

    # ---------------------------------------------------------------- events
    def _gate_fired(self, gate_id: int) -> None:
        if not self._armed:
            return
        for planned_bucket, planned_spec in self._gates.get(gate_id, ()):
            planned_spec.pending.discard(gate_id)
            if not planned_bucket.posted and planned_bucket.fully_ready:
                self._post(planned_bucket, [spec.spec for spec in planned_bucket.specs], phase="backward")
                self.stats["buckets_posted_in_backward"] += 1

    def _post(
        self, planned_bucket: _PlannedBucket, specs: Sequence[GradientBucketSpec], phase: str = "flush"
    ) -> None:
        if self.tracer.enabled:
            self.tracer.instant(
                "pipeline/bucket_posted",
                category="pipeline",
                phase=phase,
                nbytes=planned_bucket.bucket.nbytes,
                fused_count=len(planned_bucket.bucket),
            )
            self.tracer.counter_add(f"pipeline/buckets_posted_{phase}")
        self.scheduler.post_allreduces(
            [
                AllreduceSpec(key=spec.key, payload=spec.payload(), on_complete=spec.on_complete)
                for spec in specs
            ]
        )
        planned_bucket.posted = True

    # ----------------------------------------------------------------- flush
    def flush(self) -> None:
        """Post remaining buckets, drain all collectives and notify subscribers.

        Buckets whose events all fired during backward were already posted.
        Anything left is posted here with the members that are safe to send:
        specs whose gates fired, plus specs whose gates never fired but whose
        ``flush_ready`` predicate confirms the payload is valid anyway (e.g.
        a parameter that accumulated gradients in an earlier micro-batch but
        sat out the final one — the synchronous path averages it too).  Specs
        that are neither are dropped, mirroring the synchronous path's
        skip-parameters-without-gradients rule.
        """
        if not self._armed:
            raise RuntimeError("GradientPipeline.flush() called without a matching arm()")
        with self.tracer.span("pipeline/flush", category="pipeline"):
            for planned_bucket in self._plan:
                if planned_bucket.posted:
                    continue
                ready = [
                    spec.spec
                    for spec in planned_bucket.specs
                    if spec.ready or (spec.spec.flush_ready is not None and spec.spec.flush_ready())
                ]
                if ready:
                    self._post(planned_bucket, ready, phase="flush")
                    self.stats["buckets_posted_at_flush"] += 1
            self.scheduler.drain()
            sanitizer = self.scheduler.sanitizer
            if sanitizer is not None:
                # Lost-comm check: after the drain this rank must have zero
                # unfinished posted handles — anything left is a collective
                # some code path posted and forgot.
                sanitizer.assert_drained(self.comm.rank, where="pipeline/flush", tracer=self.tracer)
        self._disarm()
        for subscriber in self.subscribers:
            on_flush = getattr(subscriber, "on_pipeline_flush", None)
            if on_flush is not None:
                on_flush(self)

    def _disarm(self) -> None:
        for handle in self._hook_handles:
            handle.remove()
        self._hook_handles = []
        self._plan = []
        self._gates = {}
        self._armed = False

    def abort(self) -> None:
        """Drop an armed plan and discard anything already posted (error recovery).

        Buckets launched mid-backward before the failure are waited out and
        their results thrown away — never dispatched to callbacks — so a
        subsequent ``arm()``/``flush()`` starts from a clean scheduler.  In a
        multi-rank program every rank must abort (or otherwise match the
        posted collectives) symmetrically, as with any SPMD error recovery.
        """
        if self._armed:
            self._disarm()
        self.scheduler.discard()
