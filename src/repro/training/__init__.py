"""Training loops, the hook-driven gradient pipeline, metrics and convergence bookkeeping."""

from .convergence import CurvePoint, TrainingCurve
from .metrics import (
    classification_accuracy,
    detection_score,
    mask_iou,
    masked_lm_accuracy,
    segmentation_dice,
)
from .pipeline import GradientPipeline, default_hook_pipeline
from .trainer import Trainer

__all__ = [
    "Trainer",
    "GradientPipeline",
    "default_hook_pipeline",
    "TrainingCurve",
    "CurvePoint",
    "classification_accuracy",
    "masked_lm_accuracy",
    "segmentation_dice",
    "mask_iou",
    "detection_score",
]
