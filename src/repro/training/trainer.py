"""Training loop used by the examples, tests and benchmarks.

The loop follows the paper's Listing 1 ordering exactly: backward, gradient
synchronization (data parallel), ``preconditioner.step()``,
``optimizer.step()``.  Gradient accumulation (section 4.2) and AMP loss
scaling (section 4.1) slot in around that ordering the same way they do in
the reference implementation.

Gradient synchronization has two seams:

* the explicit path — micro-batch scaling plus
  :func:`~repro.distributed.ddp.allreduce_gradients` after backward (the
  compat wrapper, kept for callers driving the loop by hand), and
* the hook-driven path — a :class:`~repro.training.pipeline.GradientPipeline`
  armed before the final micro-batch: gradient-averaging (and K-FAC factor)
  buckets are posted *during* the backward pass as grad-ready events fire,
  and the trainer awaits a single ``flush()`` before the preconditioner /
  optimizer step.  Both paths are bitwise identical; ``pipeline="auto"``
  (the default) selects the hook-driven path when ``REPRO_HOOK_PIPELINE=1``.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Optional, Sequence, Union

import numpy as np

from ..distributed.backend import Communicator
from ..distributed.ddp import GradientAveragingSubscriber, allreduce_gradients
from ..kfac.base import Preconditioner
from ..nn.module import Module
from ..observability import NULL_TRACER, Tracer, default_tracing
from ..optim.grad_scaler import GradScaler
from ..optim.lr_scheduler import LRScheduler
from ..optim.optimizer import Optimizer
from .convergence import TrainingCurve
from .pipeline import GradientPipeline, default_hook_pipeline

__all__ = ["Trainer"]

ForwardLoss = Callable[[Module, object], "object"]
EvaluateFn = Callable[[Module], float]


class Trainer:
    """Generic trainer that composes a model, an optimizer and (optionally) KAISA.

    Parameters
    ----------
    forward_loss:
        ``forward_loss(model, batch) -> loss Tensor``; the trainer stays
        agnostic of the workload's batch structure.
    preconditioner:
        Optional :class:`repro.kfac.Preconditioner` implementation (e.g.
        :class:`repro.kfac.KFAC`); its ``step()`` is invoked between the
        gradient synchronization and the optimizer step, and its state is
        included in :meth:`state_dict` for checkpoint/resume.
    iteration_time:
        Optional simulated seconds per iteration (from
        :class:`repro.kfac.IterationTimeModel`), used to accumulate the
        simulated wall-clock recorded in training curves.
    pipeline:
        Gradient-synchronization seam.  ``"auto"`` (default) builds a
        :class:`~repro.training.pipeline.GradientPipeline` when
        ``REPRO_HOOK_PIPELINE=1`` is set; pass an instance to drive a
        pre-configured pipeline, or ``None`` to force the explicit
        ``allreduce_gradients`` path.  A pipeline the trainer builds (or
        receives with no subscribers) is wired with gradient averaging over
        ``comm`` plus the preconditioner's factor subscription when the
        preconditioner supports it.
    tracer:
        Optional :class:`repro.observability.Tracer`.  ``None`` (default)
        constructs a per-rank tracer when ``REPRO_TRACE=1`` is set and the
        no-op :data:`~repro.observability.NULL_TRACER` otherwise.  The
        trainer records step / micro-batch / forward / backward / optimizer
        spans and shares the tracer with its pipeline and preconditioner
        (when theirs is still the no-op), so one trace covers the whole
        stack.  Tracing never changes numerics: with it disabled the
        trajectory is bitwise identical.
    """

    def __init__(
        self,
        model: Module,
        optimizer: Optimizer,
        forward_loss: ForwardLoss,
        preconditioner: Optional[Preconditioner] = None,
        lr_scheduler: Optional[LRScheduler] = None,
        grad_scaler: Optional[GradScaler] = None,
        comm: Optional[Communicator] = None,
        grad_accumulation_steps: int = 1,
        iteration_time: Optional[float] = None,
        bucket_cap_mb: Optional[float] = None,
        pipeline: Union[GradientPipeline, str, None] = "auto",
        tracer=None,
    ) -> None:
        if grad_accumulation_steps < 1:
            raise ValueError("grad_accumulation_steps must be >= 1")
        if preconditioner is not None and not isinstance(preconditioner, Preconditioner):
            raise TypeError(
                "preconditioner must implement repro.kfac.Preconditioner "
                f"(got {type(preconditioner).__name__}); subclass it to plug in a custom scheme"
            )
        self.model = model
        self.optimizer = optimizer
        self.forward_loss = forward_loss
        self.preconditioner = preconditioner
        self.lr_scheduler = lr_scheduler
        self.grad_scaler = grad_scaler
        self.comm = comm
        self.grad_accumulation_steps = int(grad_accumulation_steps)
        self.iteration_time = iteration_time
        # None = single flattened allreduce; a cap routes gradient averaging
        # through the bucketed nonblocking engine (numerically identical).
        self.bucket_cap_mb = bucket_cap_mb
        if tracer is None:
            if default_tracing():
                rank = comm.rank if comm is not None else getattr(getattr(preconditioner, "comm", None), "rank", 0)
                tracer = Tracer(rank=rank)
            else:
                tracer = NULL_TRACER
        self.tracer = tracer
        if self.tracer.enabled and self.preconditioner is not None:
            set_tracer = getattr(self.preconditioner, "set_tracer", None)
            if set_tracer is not None and not getattr(self.preconditioner, "tracer", NULL_TRACER).enabled:
                set_tracer(self.tracer)
        if pipeline == "auto":
            pipeline = self._build_default_pipeline() if default_hook_pipeline() else None
        elif pipeline is not None and not isinstance(pipeline, GradientPipeline):
            raise TypeError(f"pipeline must be a GradientPipeline, 'auto' or None, got {pipeline!r}")
        if isinstance(pipeline, GradientPipeline):
            if (
                comm is not None
                and pipeline.comm is not comm
                and (comm.world_size > 1 or pipeline.comm.world_size > 1)
            ):
                # A pipeline left on its default single-process communicator
                # would silently turn gradient averaging into a no-op while
                # the trainer believes it is training data-parallel.
                raise ValueError(
                    "GradientPipeline and Trainer must share one communicator: the pipeline "
                    f"synchronizes over {pipeline.comm.world_size} rank(s) but the trainer's "
                    f"communicator spans {comm.world_size}; pass GradientPipeline(model, comm=...)"
                )
            if not pipeline.subscribers:
                self._wire_pipeline(pipeline)
            if self.tracer.enabled and not pipeline.tracer.enabled:
                pipeline.set_tracer(self.tracer)
        self.pipeline = pipeline
        self.iterations = 0
        self.simulated_time = 0.0
        self._start_time = time.perf_counter()

    def _build_default_pipeline(self) -> GradientPipeline:
        cap = self.bucket_cap_mb
        if cap is None:
            # Honor the preconditioner's resolved cap (including the
            # cost-model-sized bucket_cap_mb="auto") so the pipeline's factor
            # traffic uses the fusion granularity K-FAC was configured with.
            cap = getattr(self.preconditioner, "resolved_bucket_cap_mb", None)
        if cap is None:
            cap = 25.0
        comm = self.comm
        if comm is None:
            # A single-rank preconditioner communicator can be shared freely
            # (its collectives are no-ops).  A multi-rank one cannot: the
            # explicit path with comm=None performs NO gradient averaging, so
            # borrowing it here would silently change training semantics —
            # demand the explicit configuration instead.
            pre_comm = getattr(self.preconditioner, "comm", None)
            if pre_comm is not None and pre_comm.world_size > 1:
                raise ValueError(
                    "REPRO_HOOK_PIPELINE=1: the preconditioner communicates over "
                    f"{pre_comm.world_size} ranks but the Trainer has no communicator; the hook "
                    "pipeline will not silently begin averaging gradients across ranks — pass "
                    "comm= to the Trainer (or pipeline=None to keep the explicit path)"
                )
            comm = pre_comm
        pipeline = GradientPipeline(self.model, comm=comm, bucket_cap_mb=cap, tracer=self.tracer)
        self._wire_pipeline(pipeline)
        return pipeline

    def _wire_pipeline(self, pipeline: GradientPipeline) -> None:
        """Attach the default subscribers: gradient averaging + K-FAC factors."""
        pipeline.add_subscriber(GradientAveragingSubscriber(self.model))
        if self.preconditioner is not None and hasattr(self.preconditioner, "pipeline_specs"):
            pipeline.add_subscriber(self.preconditioner)

    # ------------------------------------------------------------------ step
    def train_step(self, batches) -> float:
        """One optimization step over one batch (or a list of micro-batches)."""
        with self.tracer.span("trainer/step", category="step", iteration=self.iterations):
            return self._train_step(batches)

    def _train_step(self, batches) -> float:
        # A plain batch is passed as-is; gradient accumulation passes an explicit
        # *list* of micro-batches (tuples/dicts are single batches).
        micro_batches: Sequence = batches if isinstance(batches, list) else [batches]
        self.model.train()
        self.optimizer.zero_grad()
        total_loss = 0.0
        final_index = len(micro_batches) - 1
        for index, micro in enumerate(micro_batches):
            with self.tracer.span("trainer/micro_batch", category="step", index=index):
                if self.pipeline is not None and index == final_index:
                    # Arm for the final micro-batch only: hooks fire every
                    # backward, but buckets post exactly once per step, carrying
                    # the accumulated gradients with the 1/n micro-batch scale.
                    self.pipeline.arm(grad_scale=1.0 / len(micro_batches))
                with self.tracer.span("trainer/forward", category="forward"):
                    loss = self.forward_loss(self.model, micro)
                total_loss += float(loss.item())
                # Category "backward" marks the window communication can hide
                # behind; measured-overlap reporting intersects comm spans
                # with exactly these intervals.
                with self.tracer.span("trainer/backward", category="backward", final=index == final_index):
                    if self.grad_scaler is not None:
                        self.grad_scaler.scale(loss).backward()
                    else:
                        loss.backward()
        if self.pipeline is not None:
            # Hook-driven path: buckets were posted during backward; one
            # flush synchronizes gradients (and K-FAC factors) before the
            # preconditioner / optimizer step.
            self.pipeline.flush()
        else:
            if len(micro_batches) > 1:
                # Average accumulated gradients so the effective loss is the mean.
                scale = 1.0 / len(micro_batches)
                for param in self.model.parameters():
                    if param.grad is not None:
                        param.grad = param.grad * scale
            if self.comm is not None:
                with self.tracer.span("trainer/allreduce_gradients", category="comm_sync"):
                    allreduce_gradients(self.model, self.comm, bucket_cap_mb=self.bucket_cap_mb)
        if self.grad_scaler is not None:
            self.grad_scaler.unscale_(self.optimizer)
        if self.preconditioner is not None:
            lr = self.optimizer.param_groups[0]["lr"]
            with self.tracer.span("trainer/precondition", category="precondition"):
                if getattr(self.preconditioner, "accepts_loss_feedback", False):
                    # Adaptive-damping preconditioners consume this step's loss
                    # (Levenberg-Marquardt actual-vs-predicted reduction).  Custom
                    # preconditioners without the property keep the plain call.
                    self.preconditioner.step(lr=lr, loss=total_loss / len(micro_batches))
                else:
                    self.preconditioner.step(lr=lr)
        with self.tracer.span("trainer/optimizer_step", category="optimizer"):
            if self.grad_scaler is not None:
                self.grad_scaler.step(self.optimizer)
                self.grad_scaler.update()
            else:
                self.optimizer.step()
        if self.lr_scheduler is not None:
            self.lr_scheduler.step()
        self.iterations += 1
        if self.iteration_time is not None:
            self.simulated_time += self.iteration_time
        return total_loss / len(micro_batches)

    # ------------------------------------------------------------ checkpoint
    def state_dict(self) -> dict:
        """Complete checkpointable trainer state.

        Model weights, first-order optimizer buffers (momentum / Adam / LAMB
        moments), K-FAC factors and eigen state, LR-schedule position, loss
        scale and iteration counters all round-trip, so a restored trainer
        reproduces the exact training trajectory.
        """
        state = {
            "iterations": self.iterations,
            "simulated_time": self.simulated_time,
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "preconditioner": None,
            "lr_scheduler": None,
            "grad_scaler": None,
        }
        if self.preconditioner is not None:
            state["preconditioner"] = self.preconditioner.state_dict()
        if self.lr_scheduler is not None:
            state["lr_scheduler"] = self.lr_scheduler.state_dict()
        if self.grad_scaler is not None:
            state["grad_scaler"] = self.grad_scaler.state_dict()
        return state

    def load_state_dict(self, state: dict) -> None:
        """Restore state produced by :meth:`state_dict`.

        A component configured on this trainer but absent from the checkpoint
        (or vice versa) raises: resuming would silently keep stale state.
        """
        self.model.load_state_dict(state["model"])
        if "optimizer" not in state:
            raise ValueError(
                "checkpoint contains no optimizer state; it predates optimizer serialization "
                "and cannot restore the exact training trajectory"
            )
        self.optimizer.load_state_dict(state["optimizer"])
        for attr, key in (
            ("preconditioner", "preconditioner"),
            ("lr_scheduler", "lr_scheduler"),
            ("grad_scaler", "grad_scaler"),
        ):
            component = getattr(self, attr)
            component_state = state.get(key)
            if component_state is not None:
                if component is None:
                    raise ValueError(f"checkpoint contains {key} state but the trainer has no {key}")
                component.load_state_dict(component_state)
            elif component is not None:
                raise ValueError(
                    f"trainer has a {key} but the checkpoint contains no {key} state; "
                    "resuming would silently keep stale state"
                )
        self.iterations = int(state["iterations"])
        self.simulated_time = float(state["simulated_time"])

    def preconditioner_memory(self) -> dict:
        """Per-rank preconditioner state bytes (empty categories when none is set)."""
        if self.preconditioner is None:
            return {"factors": 0, "eigen": 0, "total": 0}
        return dict(self.preconditioner.memory_usage())

    # ------------------------------------------------------------------- fit
    def fit(
        self,
        train_loader: Iterable,
        epochs: int,
        evaluate_fn: Optional[EvaluateFn] = None,
        curve: Optional[TrainingCurve] = None,
        eval_every_epochs: int = 1,
        target_metric: Optional[float] = None,
        max_iterations: Optional[int] = None,
    ) -> TrainingCurve:
        """Train for ``epochs`` epochs, recording the validation curve.

        Stops early when ``target_metric`` is reached (if given) or when
        ``max_iterations`` optimization steps have run.
        """
        if curve is None:
            curve = TrainingCurve(name="training")
        for epoch in range(epochs):
            epoch_loss = 0.0
            batches = 0
            for batch in train_loader:
                epoch_loss += self.train_step(batch)
                batches += 1
                if max_iterations is not None and self.iterations >= max_iterations:
                    break
            mean_loss = epoch_loss / max(batches, 1)
            if evaluate_fn is not None and (epoch + 1) % eval_every_epochs == 0:
                self.model.eval()
                metric = float(evaluate_fn(self.model))
                curve.record(
                    iteration=self.iterations,
                    epoch=float(epoch + 1),
                    metric=metric,
                    train_loss=mean_loss,
                    wall_time=time.perf_counter() - self._start_time,
                    simulated_time=self.simulated_time,
                )
                if target_metric is not None and curve.reached(target_metric):
                    break
            if max_iterations is not None and self.iterations >= max_iterations:
                break
        return curve
