"""Training curves and time/iterations-to-convergence bookkeeping.

The paper's headline results are all expressed as "iterations (or epochs, or
minutes) to reach the baseline validation metric" — Figures 1 and 5, Tables 3
and 4.  :class:`TrainingCurve` records the validation metric against
iteration count, epoch and (optionally simulated) wall-clock time, and
answers the convergence questions the benchmarks need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

__all__ = ["CurvePoint", "TrainingCurve"]


@dataclass
class CurvePoint:
    """One validation measurement."""

    iteration: int
    epoch: float
    metric: float
    train_loss: Optional[float] = None
    wall_time: float = 0.0
    simulated_time: float = 0.0


@dataclass
class TrainingCurve:
    """Sequence of validation measurements for one training run."""

    name: str
    higher_is_better: bool = True
    points: List[CurvePoint] = field(default_factory=list)

    def record(
        self,
        iteration: int,
        epoch: float,
        metric: float,
        train_loss: Optional[float] = None,
        wall_time: float = 0.0,
        simulated_time: float = 0.0,
    ) -> None:
        self.points.append(
            CurvePoint(
                iteration=iteration,
                epoch=epoch,
                metric=metric,
                train_loss=train_loss,
                wall_time=wall_time,
                simulated_time=simulated_time,
            )
        )

    def _reached(self, point: CurvePoint, target: float) -> bool:
        return point.metric >= target if self.higher_is_better else point.metric <= target

    @property
    def best_metric(self) -> float:
        if not self.points:
            raise ValueError("curve is empty")
        values = [p.metric for p in self.points]
        return max(values) if self.higher_is_better else min(values)

    @property
    def final_metric(self) -> float:
        if not self.points:
            raise ValueError("curve is empty")
        return self.points[-1].metric

    def reached(self, target: float) -> bool:
        return any(self._reached(p, target) for p in self.points)

    def first_point_reaching(self, target: float) -> Optional[CurvePoint]:
        for point in self.points:
            if self._reached(point, target):
                return point
        return None

    def iterations_to_target(self, target: float) -> Optional[int]:
        point = self.first_point_reaching(target)
        return point.iteration if point is not None else None

    def epochs_to_target(self, target: float) -> Optional[float]:
        point = self.first_point_reaching(target)
        return point.epoch if point is not None else None

    def time_to_target(self, target: float, simulated: bool = False) -> Optional[float]:
        point = self.first_point_reaching(target)
        if point is None:
            return None
        return point.simulated_time if simulated else point.wall_time

    def metric_series(self) -> List[float]:
        return [p.metric for p in self.points]
