"""Validation metrics for the paper's workloads."""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..nn.loss import dice_coefficient

__all__ = [
    "classification_accuracy",
    "masked_lm_accuracy",
    "segmentation_dice",
    "detection_score",
    "mask_iou",
]


def classification_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 accuracy (the ResNet/ImageNet validation metric)."""
    predictions = np.asarray(logits).argmax(axis=-1)
    return float((predictions == np.asarray(labels)).mean())


def masked_lm_accuracy(logits: np.ndarray, labels: np.ndarray, ignore_index: int = -100) -> float:
    """Accuracy over masked token positions (our BERT validation proxy for SQuAD F1)."""
    labels = np.asarray(labels)
    mask = labels != ignore_index
    if not mask.any():
        return 0.0
    predictions = np.asarray(logits).argmax(axis=-1)
    return float((predictions[mask] == labels[mask]).mean())


def segmentation_dice(logits: np.ndarray, masks: np.ndarray, threshold: float = 0.5) -> float:
    """Dice similarity coefficient on sigmoid probabilities (the U-Net metric)."""
    probabilities = 1.0 / (1.0 + np.exp(-np.asarray(logits, dtype=np.float64)))
    return dice_coefficient(probabilities, masks, threshold=threshold)


def mask_iou(mask_logits: np.ndarray, masks: np.ndarray, threshold: float = 0.5) -> float:
    """Mean intersection-over-union of predicted instance masks."""
    prediction = (1.0 / (1.0 + np.exp(-np.asarray(mask_logits, dtype=np.float64)))) >= threshold
    target = np.asarray(masks) >= 0.5
    axes = tuple(range(1, prediction.ndim))
    intersection = np.logical_and(prediction, target).sum(axis=axes)
    union = np.logical_or(prediction, target).sum(axis=axes)
    union = np.maximum(union, 1)
    return float((intersection / union).mean())


def detection_score(class_logits: np.ndarray, labels: np.ndarray, mask_logits: np.ndarray, masks: np.ndarray) -> float:
    """Proxy for COCO mAP on the ROI-head task.

    The paper reports bbox/segm mAP, which requires the full detection
    pipeline; on the synthetic ROI-crop task we report the product-style
    combination of classification accuracy and mask IoU for the ground-truth
    class, which rewards exactly the two behaviours the ROI heads are trained
    for and has the same "higher is better, saturates below 1" character.
    """
    accuracy = classification_accuracy(class_logits, labels)
    labels = np.asarray(labels)
    selected = np.asarray(mask_logits)[np.arange(labels.shape[0]), labels]
    iou = mask_iou(selected, masks)
    return 0.5 * (accuracy + iou)
