"""First-order optimizers, LR schedules and AMP loss scaling."""

from .adam import Adam, AdamW
from .grad_scaler import GradScaler
from .lamb import LAMB
from .lr_scheduler import (
    LRScheduler,
    WarmupConstant,
    WarmupCosine,
    WarmupMultiStep,
    WarmupPolynomial,
)
from .optimizer import Optimizer
from .sgd import SGD

__all__ = [
    "Optimizer",
    "SGD",
    "Adam",
    "AdamW",
    "LAMB",
    "GradScaler",
    "LRScheduler",
    "WarmupConstant",
    "WarmupCosine",
    "WarmupMultiStep",
    "WarmupPolynomial",
]
