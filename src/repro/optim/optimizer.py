"""Optimizer base class with parameter groups."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer"]

ParamsLike = Union[Iterable[Parameter], Iterable[Dict]]


class Optimizer:
    """Base optimizer: holds parameter groups and per-parameter state.

    KAISA is *not* an optimizer itself — it is a preconditioner whose
    ``step()`` is called right before the optimizer's ``step()`` (Listing 1 in
    the paper), so any optimizer defined here composes with K-FAC unchanged.
    """

    def __init__(self, params: ParamsLike, defaults: Dict) -> None:
        self.defaults = dict(defaults)
        self.param_groups: List[Dict] = []
        self.state: Dict[int, Dict] = {}
        params = list(params)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        if isinstance(params[0], dict):
            for group in params:
                self.add_param_group(dict(group))
        else:
            self.add_param_group({"params": params})

    def add_param_group(self, group: Dict) -> None:
        if "params" not in group:
            raise ValueError("param group must contain a 'params' key")
        group["params"] = list(group["params"])
        for key, value in self.defaults.items():
            group.setdefault(key, value)
        self.param_groups.append(group)

    def parameters(self) -> Iterable[Parameter]:
        for group in self.param_groups:
            yield from group["params"]

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters():
            param.grad = None

    def state_for(self, param: Parameter) -> Dict:
        """Per-parameter optimizer state (lazily created)."""
        return self.state.setdefault(id(param), {})

    def state_bytes(self) -> int:
        """Total bytes of optimizer state (momentum buffers etc.), for the memory model."""
        total = 0
        for entry in self.state.values():
            for value in entry.values():
                if isinstance(value, np.ndarray):
                    total += value.nbytes
        return total

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def grad_norm(self) -> float:
        """Global L2 norm of all gradients (useful for clipping / logging)."""
        total = 0.0
        for param in self.parameters():
            if param.grad is not None:
                total += float(np.sum(param.grad.astype(np.float64) ** 2))
        return float(np.sqrt(total))
