"""Optimizer base class with parameter groups."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Union

import numpy as np

from ..nn.module import Parameter

__all__ = ["Optimizer"]

ParamsLike = Union[Iterable[Parameter], Iterable[Dict]]


class Optimizer:
    """Base optimizer: holds parameter groups and per-parameter state.

    KAISA is *not* an optimizer itself — it is a preconditioner whose
    ``step()`` is called right before the optimizer's ``step()`` (Listing 1 in
    the paper), so any optimizer defined here composes with K-FAC unchanged.
    """

    def __init__(self, params: ParamsLike, defaults: Dict) -> None:
        self.defaults = dict(defaults)
        self.param_groups: List[Dict] = []
        self.state: Dict[int, Dict] = {}
        params = list(params)
        if not params:
            raise ValueError("optimizer received an empty parameter list")
        if isinstance(params[0], dict):
            for group in params:
                self.add_param_group(dict(group))
        else:
            self.add_param_group({"params": params})

    def add_param_group(self, group: Dict) -> None:
        if "params" not in group:
            raise ValueError("param group must contain a 'params' key")
        group["params"] = list(group["params"])
        for key, value in self.defaults.items():
            group.setdefault(key, value)
        self.param_groups.append(group)

    def parameters(self) -> Iterable[Parameter]:
        for group in self.param_groups:
            yield from group["params"]

    def zero_grad(self) -> None:
        """Clear gradients of all managed parameters."""
        for param in self.parameters():
            param.grad = None

    def state_for(self, param: Parameter) -> Dict:
        """Per-parameter optimizer state (lazily created)."""
        return self.state.setdefault(id(param), {})

    # ------------------------------------------------------------ checkpoint
    def state_dict(self) -> Dict:
        """Serializable optimizer state: per-parameter buffers and group hyperparameters.

        Parameters are identified by their position across the parameter
        groups (the PyTorch convention), so a checkpoint can be restored into
        a freshly constructed optimizer over an equivalent model.  Array
        buffers (momentum, Adam/LAMB moments) are copied; scalar state (step
        counters) is stored as-is.
        """
        index: Dict[int, int] = {}
        groups_out: List[Dict] = []
        for group in self.param_groups:
            param_indices = []
            for param in group["params"]:
                if id(param) not in index:
                    index[id(param)] = len(index)
                param_indices.append(index[id(param)])
            entry = {key: value for key, value in group.items() if key != "params"}
            entry["params"] = param_indices
            groups_out.append(entry)
        state_out: Dict[int, Dict] = {}
        for group in self.param_groups:
            for param in group["params"]:
                entry = self.state.get(id(param))
                if not entry:
                    continue
                state_out[index[id(param)]] = {
                    key: value.copy() if isinstance(value, np.ndarray) else value
                    for key, value in entry.items()
                }
        return {"state": state_out, "param_groups": groups_out}

    def load_state_dict(self, state: Dict) -> None:
        """Restore state saved by :meth:`state_dict`.

        The optimizer must have been constructed with the same parameter
        -group structure (same group count and sizes); group hyperparameters
        (lr, momentum, betas, ...) are restored from the checkpoint so the
        resumed schedule matches the saved one.
        """
        saved_groups = state["param_groups"]
        if len(saved_groups) != len(self.param_groups):
            raise ValueError(
                f"checkpoint has {len(saved_groups)} param groups, optimizer has {len(self.param_groups)}"
            )
        params_by_index: Dict[int, Parameter] = {}
        for group, saved in zip(self.param_groups, saved_groups):
            if len(saved["params"]) != len(group["params"]):
                raise ValueError(
                    f"checkpoint group has {len(saved['params'])} parameters, "
                    f"optimizer group has {len(group['params'])}"
                )
            for param, param_index in zip(group["params"], saved["params"]):
                existing = params_by_index.setdefault(param_index, param)
                if existing is not param:
                    raise ValueError("checkpoint parameter indices are inconsistent across groups")
            for key, value in saved.items():
                if key != "params":
                    group[key] = value
        self.state.clear()
        for param_index, entry in state["state"].items():
            param = params_by_index.get(int(param_index))
            if param is None:
                raise ValueError(f"checkpoint references unknown parameter index {param_index}")
            restored = {}
            for key, value in entry.items():
                if isinstance(value, np.ndarray):
                    if value.shape != param.data.shape:
                        raise ValueError(
                            f"optimizer buffer {key!r} for parameter {param_index} has shape "
                            f"{value.shape}, expected {param.data.shape}"
                        )
                    restored[key] = value.copy()
                else:
                    restored[key] = value
            self.state[id(param)] = restored

    def state_bytes(self) -> int:
        """Total bytes of optimizer state (momentum buffers etc.), for the memory model."""
        total = 0
        for entry in self.state.values():
            for value in entry.values():
                if isinstance(value, np.ndarray):
                    total += value.nbytes
        return total

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError

    def grad_norm(self) -> float:
        """Global L2 norm of all gradients (useful for clipping / logging)."""
        total = 0.0
        for param in self.parameters():
            if param.grad is not None:
                total += float(np.sum(param.grad.astype(np.float64) ** 2))
        return float(np.sqrt(total))
