"""Loss scaling for mixed-precision training (AMP GradScaler emulation).

KAISA integrates with the training GradScaler in two ways (paper section 4.1):

* the usual unscale-before-step path for the optimizer, and
* unscaling the ``G`` Kronecker factors, because the backward-pass gradients
  that produce ``G`` carry the current loss scale and the scale changes over
  training, which would otherwise corrupt the running factor average.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..nn.module import Parameter
from .optimizer import Optimizer

__all__ = ["GradScaler"]


class GradScaler:
    """Dynamic loss scaler mirroring ``torch.cuda.amp.GradScaler`` semantics."""

    def __init__(
        self,
        init_scale: float = 2.0 ** 16,
        growth_factor: float = 2.0,
        backoff_factor: float = 0.5,
        growth_interval: int = 2000,
        enabled: bool = True,
    ) -> None:
        self.enabled = bool(enabled)
        self._scale = float(init_scale)
        self.growth_factor = float(growth_factor)
        self.backoff_factor = float(backoff_factor)
        self.growth_interval = int(growth_interval)
        self._growth_tracker = 0
        self._found_inf = False
        self._unscaled = False

    def get_scale(self) -> float:
        """Current loss scale value."""
        return self._scale if self.enabled else 1.0

    def scale(self, loss):
        """Scale a loss tensor (or float) by the current loss scale."""
        if not self.enabled:
            return loss
        return loss * self._scale

    def unscale_(self, optimizer: Optimizer) -> None:
        """Divide all gradients held by ``optimizer`` by the loss scale in place."""
        if not self.enabled or self._unscaled:
            return
        inv = 1.0 / self._scale
        for param in optimizer.parameters():
            if param.grad is None:
                continue
            grad = param.grad.astype(np.float32) * inv
            if not np.all(np.isfinite(grad)):
                self._found_inf = True
            param.grad = grad
        self._unscaled = True

    def step(self, optimizer: Optimizer) -> bool:
        """Unscale (if needed) and step the optimizer; returns False if skipped."""
        if not self.enabled:
            optimizer.step()
            return True
        if not self._unscaled:
            self.unscale_(optimizer)
        if self._found_inf:
            return False
        optimizer.step()
        return True

    def update(self) -> None:
        """Adjust the loss scale after a step (backoff on overflow, grow otherwise)."""
        if not self.enabled:
            return
        if self._found_inf:
            self._scale = max(self._scale * self.backoff_factor, 1.0)
            self._growth_tracker = 0
        else:
            self._growth_tracker += 1
            if self._growth_tracker >= self.growth_interval:
                self._scale *= self.growth_factor
                self._growth_tracker = 0
        self._found_inf = False
        self._unscaled = False

    def state_dict(self) -> dict:
        """Mutable loss-scale state for checkpoint/resume."""
        return {
            "scale": self._scale,
            "growth_tracker": self._growth_tracker,
            "found_inf": self._found_inf,
            "unscaled": self._unscaled,
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output."""
        self._scale = float(state["scale"])
        self._growth_tracker = int(state["growth_tracker"])
        self._found_inf = bool(state["found_inf"])
        self._unscaled = bool(state["unscaled"])
