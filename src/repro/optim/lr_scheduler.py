"""Learning-rate schedules with linear warmup (Table 2 uses warmup for every app)."""

from __future__ import annotations

import math
from typing import Sequence

from .optimizer import Optimizer

__all__ = ["LRScheduler", "WarmupConstant", "WarmupCosine", "WarmupMultiStep", "WarmupPolynomial"]


class LRScheduler:
    """Base class: scales each group's base LR by ``factor(step)`` every step."""

    def __init__(self, optimizer: Optimizer, warmup_steps: int = 0) -> None:
        self.optimizer = optimizer
        self.warmup_steps = int(warmup_steps)
        self.base_lrs = [group["lr"] for group in optimizer.param_groups]
        self.last_step = 0

    def factor(self, step: int) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def warmup_factor(self, step: int) -> float:
        if self.warmup_steps <= 0 or step >= self.warmup_steps:
            return 1.0
        return float(step + 1) / float(self.warmup_steps)

    def get_lr(self) -> list[float]:
        scale = self.warmup_factor(self.last_step) * self.factor(self.last_step)
        return [base * scale for base in self.base_lrs]

    def step(self) -> None:
        """Advance one training iteration and update the optimizer's LR."""
        self.last_step += 1
        for group, lr in zip(self.optimizer.param_groups, self.get_lr()):
            group["lr"] = lr

    def state_dict(self) -> dict:
        """Mutable scheduler state (the step counter) for checkpoint/resume."""
        return {"last_step": self.last_step}

    def load_state_dict(self, state: dict) -> None:
        """Restore :meth:`state_dict` output and re-apply the LR it implies."""
        self.last_step = int(state["last_step"])
        for group, lr in zip(self.optimizer.param_groups, self.get_lr()):
            group["lr"] = lr


class WarmupConstant(LRScheduler):
    """Linear warmup followed by a constant learning rate."""

    def factor(self, step: int) -> float:
        return 1.0


class WarmupCosine(LRScheduler):
    """Linear warmup followed by cosine decay to ``min_factor`` at ``total_steps``."""

    def __init__(self, optimizer: Optimizer, total_steps: int, warmup_steps: int = 0, min_factor: float = 0.0) -> None:
        super().__init__(optimizer, warmup_steps)
        self.total_steps = max(int(total_steps), 1)
        self.min_factor = float(min_factor)

    def factor(self, step: int) -> float:
        if step >= self.total_steps:
            return self.min_factor
        progress = max(step - self.warmup_steps, 0) / max(self.total_steps - self.warmup_steps, 1)
        cosine = 0.5 * (1.0 + math.cos(math.pi * progress))
        return self.min_factor + (1.0 - self.min_factor) * cosine


class WarmupMultiStep(LRScheduler):
    """Linear warmup followed by step decay at the given milestones (ResNet schedule)."""

    def __init__(self, optimizer: Optimizer, milestones: Sequence[int], gamma: float = 0.1, warmup_steps: int = 0) -> None:
        super().__init__(optimizer, warmup_steps)
        self.milestones = sorted(int(m) for m in milestones)
        self.gamma = float(gamma)

    def factor(self, step: int) -> float:
        passed = sum(1 for milestone in self.milestones if step >= milestone)
        return self.gamma ** passed


class WarmupPolynomial(LRScheduler):
    """Linear warmup followed by polynomial decay (the BERT/LAMB schedule)."""

    def __init__(self, optimizer: Optimizer, total_steps: int, warmup_steps: int = 0, power: float = 1.0, end_factor: float = 0.0) -> None:
        super().__init__(optimizer, warmup_steps)
        self.total_steps = max(int(total_steps), 1)
        self.power = float(power)
        self.end_factor = float(end_factor)

    def factor(self, step: int) -> float:
        if step >= self.total_steps:
            return self.end_factor
        remaining = 1.0 - max(step - self.warmup_steps, 0) / max(self.total_steps - self.warmup_steps, 1)
        return self.end_factor + (1.0 - self.end_factor) * (remaining ** self.power)
