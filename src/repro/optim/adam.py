"""Adam and AdamW optimizers."""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer

__all__ = ["Adam", "AdamW"]


class Adam(Optimizer):
    """Adam (Kingma & Ba 2015) with optional L2 weight decay added to the gradient."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        if not 0.0 <= betas[0] < 1.0 or not 0.0 <= betas[1] < 1.0:
            raise ValueError(f"invalid betas {betas}")
        super().__init__(params, {"lr": lr, "betas": tuple(betas), "eps": eps, "weight_decay": weight_decay})

    decoupled_weight_decay = False

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad.astype(np.float32)
                data = param.data.astype(np.float32)
                if weight_decay != 0.0 and not self.decoupled_weight_decay:
                    grad = grad + weight_decay * data
                state = self.state_for(param)
                if "step" not in state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros_like(data)
                    state["exp_avg_sq"] = np.zeros_like(data)
                state["step"] += 1
                step = state["step"]
                state["exp_avg"] = beta1 * state["exp_avg"] + (1 - beta1) * grad
                state["exp_avg_sq"] = beta2 * state["exp_avg_sq"] + (1 - beta2) * grad * grad
                bias1 = 1 - beta1 ** step
                bias2 = 1 - beta2 ** step
                update = (state["exp_avg"] / bias1) / (np.sqrt(state["exp_avg_sq"] / bias2) + eps)
                if weight_decay != 0.0 and self.decoupled_weight_decay:
                    update = update + weight_decay * data
                param.data = (data - lr * update).astype(param.data.dtype)


class AdamW(Adam):
    """Adam with decoupled weight decay (Loshchilov & Hutter 2019)."""

    decoupled_weight_decay = True
