"""LAMB optimizer (You et al. 2019), the paper's BERT baseline ("Fused LAMB")."""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer

__all__ = ["LAMB"]


class LAMB(Optimizer):
    """Layer-wise Adaptive Moments for large-batch training.

    The per-layer trust ratio ``||w|| / ||update||`` rescales the Adam-style
    update, which is what allows BERT pretraining with batch sizes of 32K+.
    The paper uses NVIDIA's Fused LAMB; this is a functionally equivalent
    unfused implementation.
    """

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-6,
        weight_decay: float = 0.01,
        clamp_trust_ratio: tuple[float, float] = (0.0, 10.0),
    ) -> None:
        super().__init__(
            params,
            {
                "lr": lr,
                "betas": tuple(betas),
                "eps": eps,
                "weight_decay": weight_decay,
                "clamp_trust_ratio": tuple(clamp_trust_ratio),
            },
        )

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            beta1, beta2 = group["betas"]
            eps = group["eps"]
            weight_decay = group["weight_decay"]
            low, high = group["clamp_trust_ratio"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad.astype(np.float32)
                data = param.data.astype(np.float32)
                state = self.state_for(param)
                if "step" not in state:
                    state["step"] = 0
                    state["exp_avg"] = np.zeros_like(data)
                    state["exp_avg_sq"] = np.zeros_like(data)
                state["step"] += 1
                step = state["step"]
                state["exp_avg"] = beta1 * state["exp_avg"] + (1 - beta1) * grad
                state["exp_avg_sq"] = beta2 * state["exp_avg_sq"] + (1 - beta2) * grad * grad
                m_hat = state["exp_avg"] / (1 - beta1 ** step)
                v_hat = state["exp_avg_sq"] / (1 - beta2 ** step)
                update = m_hat / (np.sqrt(v_hat) + eps)
                if weight_decay != 0.0:
                    update = update + weight_decay * data

                weight_norm = float(np.linalg.norm(data))
                update_norm = float(np.linalg.norm(update))
                if weight_norm > 0.0 and update_norm > 0.0:
                    trust_ratio = weight_norm / update_norm
                    if high > 0:
                        trust_ratio = min(max(trust_ratio, low), high)
                else:
                    trust_ratio = 1.0
                param.data = (data - lr * trust_ratio * update).astype(param.data.dtype)
