"""Stochastic gradient descent with momentum."""

from __future__ import annotations

import numpy as np

from .optimizer import Optimizer

__all__ = ["SGD"]


class SGD(Optimizer):
    """SGD with momentum, weight decay and optional Nesterov acceleration.

    Matches the PyTorch update rule used as the paper's baseline optimizer
    for ResNet-50, Mask R-CNN and (via ADAM) U-Net experiments.
    """

    def __init__(
        self,
        params,
        lr: float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        if lr < 0.0:
            raise ValueError(f"invalid learning rate {lr}")
        if momentum < 0.0:
            raise ValueError(f"invalid momentum {momentum}")
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        super().__init__(params, {"lr": lr, "momentum": momentum, "weight_decay": weight_decay, "nesterov": nesterov})

    def step(self) -> None:
        for group in self.param_groups:
            lr = group["lr"]
            momentum = group["momentum"]
            weight_decay = group["weight_decay"]
            nesterov = group["nesterov"]
            for param in group["params"]:
                if param.grad is None:
                    continue
                grad = param.grad.astype(np.float32)
                if weight_decay != 0.0:
                    grad = grad + weight_decay * param.data.astype(np.float32)
                if momentum != 0.0:
                    state = self.state_for(param)
                    buf = state.get("momentum_buffer")
                    if buf is None:
                        buf = grad.copy()
                    else:
                        buf = momentum * buf + grad
                    state["momentum_buffer"] = buf
                    grad = grad + momentum * buf if nesterov else buf
                param.data = (param.data.astype(np.float32) - lr * grad).astype(param.data.dtype)
